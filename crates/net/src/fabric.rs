//! The network fabric: routers, links, network interfaces, and the
//! cycle-by-cycle simulation algorithm.
//!
//! Each [`Fabric::step`] call advances one **network cycle** in five
//! deterministic phases:
//!
//! 1. **Link delivery** — flits sent last cycle arrive in downstream
//!    input buffers (links have a one-cycle latency: the paper's
//!    single-cycle base switch delay).
//! 2. **Route computation** — head flits newly at the front of an input
//!    virtual channel are assigned an output (e-cube + dateline VC).
//! 3. **Switch allocation and traversal** — each output physical channel
//!    forwards at most one flit, multiplexing its virtual channels
//!    round-robin; wormhole locks hold each output VC for one message from
//!    head to tail; credits enforce downstream buffer space.
//! 4. **Credit return** — buffer slots freed this cycle become visible to
//!    upstream routers next cycle.
//! 5. **Injection** — each network interface streams at most one flit per
//!    cycle into its router's injection buffer (the paper's
//!    processor-to-network channel).
//!
//! Everything is deterministic: no randomness, fixed iteration order.
//!
//! # The active-set cycle engine
//!
//! The engine never scans idle state. Phases 2 and 3 visit only routers
//! whose input buffers hold at least one flit (tracked by incrementally
//! maintained per-router occupancy counters and an [`ActiveSet`] bitmap);
//! phase 1 visits only links that actually carry a flit (worklists filled
//! at send time); phase 5 visits only network interfaces with queued or
//! streaming messages. Iteration order over every worklist is **ascending
//! node/link index** — exactly the order the naive full scan used — so
//! round-robin arbitration decisions and fault-injection RNG rolls replay
//! bit-for-bit identically (the equivalence tests in
//! [`crate::reference`] assert this against the retained naive engine).
//!
//! Messages in flight live in a generational slab: each flit carries its
//! message's slot index, so hot-path lookups are array indexing (with the
//! message id doubling as a generation check) instead of hashing. Switch
//! allocation is gated by per-`(router, output, dateline-class)` request
//! counters — maintained when routes are assigned and heads depart — so
//! the expensive input-VC arbitration scan runs only when a routed head
//! is actually waiting. All per-cycle buffers (credit returns, worklist
//! snapshots) are reused scratch vectors: the steady-state hot path
//! allocates nothing.
//!
//! When the fabric is completely drained, [`Fabric::fast_forward`] jumps
//! the clock over the idle gap in O(scheduled faults) instead of stepping
//! cycle by cycle, still firing scheduled faults at their exact cycles.

use crate::active::ActiveSet;
use crate::fault::{FaultLog, FaultPlan};
use crate::message::{Delivery, Flit, FlitKind, Message, MessageId};
use crate::router::{InputRef, OutputRef, INFINITE_CREDITS};
use crate::routing::{VcIndex, DATELINE_VCS};
use crate::stats::{FabricStats, LatencyBreakdown};
use crate::topology::{Direction, NodeId, PortStep, Topology, Torus};
use crate::trace::{TraceBuffer, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::mem;

/// An internal-consistency failure surfaced by the fabric instead of a
/// panic: the simulation state referenced a message or flit the fabric no
/// longer knows about. These indicate a bug (or a hostile payload table
/// manipulation), never a recoverable condition — but callers running
/// long experiments deserve a structured error over an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// A flit in flight referenced a message absent from the pending
    /// table.
    UnknownMessage {
        /// The orphaned message id.
        message: MessageId,
        /// Which phase tripped over it.
        context: &'static str,
        /// Cycle of detection.
        cycle: u64,
    },
    /// Switch allocation selected an input buffer that turned out empty.
    MissingFlit {
        /// Router whose arbitration went wrong.
        node: NodeId,
        /// Cycle of detection.
        cycle: u64,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownMessage {
                message,
                context,
                cycle,
            } => write!(
                f,
                "cycle {cycle}: {context} referenced unknown message {}",
                message.0
            ),
            FabricError::MissingFlit { node, cycle } => write!(
                f,
                "cycle {cycle}: switch allocation at node {} selected an empty buffer",
                node.0
            ),
        }
    }
}

impl std::error::Error for FabricError {}

/// Configuration of buffering and virtual channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Virtual channels per link. Must be even and at least 2: the lower
    /// half serves dateline class 0, the upper half class 1 (tori require
    /// the two classes for deadlock freedom; extra channels per class
    /// reduce wormhole head-of-line blocking).
    pub link_vcs: usize,
    /// Flit capacity of each input virtual-channel buffer.
    pub vc_buffer_capacity: usize,
    /// Flit capacity of the router's injection input buffer.
    pub injection_buffer_capacity: usize,
    /// Capacity of the event-trace ring buffer
    /// ([`Fabric::trace`]); `0` (the default) disables tracing entirely —
    /// no buffer is allocated and the event sites reduce to a dead
    /// `Option` check.
    pub trace_capacity: usize,
}

impl Default for FabricConfig {
    /// A moderate amount of buffering, as the paper describes: two
    /// dateline virtual channels with eight-flit buffers. Tracing off.
    fn default() -> Self {
        Self {
            link_vcs: DATELINE_VCS,
            vc_buffer_capacity: 8,
            injection_buffer_capacity: 8,
            trace_capacity: 0,
        }
    }
}

/// Per-message bookkeeping while in flight, stored in the slab. The `id`
/// field is the generation check: a flit referencing this slot is valid
/// only while its message id matches.
#[derive(Debug, Clone)]
struct Pending<P> {
    id: u64,
    message: Message<P>,
    enqueued_at: u64,
    injected_at: u64,
    /// Cycle the head flit first entered the destination router's input
    /// buffer (loopbacks: the injection cycle).
    dst_arrived_at: u64,
    head_delivered_at: u64,
    hops: u32,
    /// Set when a drop fault dooms the message: the `(node, output)`
    /// where its worm evaporates.
    doomed: Option<(u32, u32)>,
}

/// Network-interface injection state for one node. Queue entries carry
/// `(slab slot, message id)`.
#[derive(Debug, Clone, Default)]
struct NetworkInterface {
    queue: VecDeque<(u32, MessageId)>,
    /// Message currently being flitized: slot, id, next flit index, and
    /// total length. The length is cached at streaming start because a
    /// shard fabric's slab entry can migrate to another shard (with the
    /// head flit) while later flits are still streaming here.
    streaming: Option<(u32, MessageId, u32, u32)>,
}

/// A cycle-level k-ary n-cube torus fabric carrying messages with payload
/// type `P`.
///
/// # Examples
///
/// ```
/// use commloc_net::{Fabric, FabricConfig, Message, NodeId, Torus};
///
/// let mut fabric = Fabric::new(Torus::new(2, 8), FabricConfig::default());
/// fabric.inject(Message::new(NodeId(0), NodeId(9), 12, "hello"));
/// while fabric.in_flight() > 0 {
///     fabric.step().unwrap();
/// }
/// let delivery = fabric.poll_delivery(NodeId(9)).expect("delivered");
/// assert_eq!(delivery.message.payload, "hello");
/// assert_eq!(delivery.hops, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Fabric<P> {
    topology: Topology,
    config: FabricConfig,
    /// Global id of the first node this fabric owns (`0` for a
    /// whole-torus fabric). A shard fabric owns the contiguous global
    /// range `base .. base + owned`; every per-node array below is
    /// indexed by `global - base`.
    base: usize,
    /// Number of nodes this fabric owns.
    owned: usize,
    /// Router state, struct-of-arrays. Input and output virtual channels
    /// share the index function `node * vc_stride + port * link_vcs + vc`
    /// with `vc_stride = link_ports * link_vcs + 1`: the single-VC
    /// injection input / ejection output (`port == link_ports`, `vc == 0`)
    /// lands on the trailing slot of each node's block.
    in_fifo: Vec<VecDeque<Flit>>,
    /// Route of the message at each input VC's front, assigned when its
    /// head reaches the front and cleared when its tail departs.
    in_route: Vec<Option<OutputRef>>,
    /// Cycle each input VC's front route was assigned (hop-block trace).
    in_routed_at: Vec<u64>,
    /// Wormhole lock owner of each output VC.
    out_locked: Vec<Option<InputRef>>,
    /// Free downstream buffer slots of each output VC.
    out_credits: Vec<usize>,
    /// Round-robin input pointer of each output VC.
    out_rr_input: Vec<usize>,
    /// Round-robin VC pointer of each output physical channel, indexed
    /// `node * (link_ports + 1) + port`.
    out_rr_vc: Vec<usize>,
    /// Inter-router links, indexed `node * link_ports + port`; each holds
    /// at most one in-transit flit tagged with its virtual channel.
    links: Vec<Option<(Flit, VcIndex)>>,
    /// Worklist of `links` indices currently holding a flit, ascending
    /// (filled at send time, drained by the next cycle's delivery phase).
    link_occupied: Vec<u32>,
    /// Injection channels (NI to router), one per node.
    inj_links: Vec<Option<Flit>>,
    /// Worklist of nodes whose injection channel holds a flit, ascending.
    inj_occupied: Vec<u32>,
    /// Free slots in each router's injection input buffer as seen by the
    /// NI.
    inj_credits: Vec<usize>,
    nis: Vec<NetworkInterface>,
    /// Generational slab of in-flight messages; flits carry their slot.
    slots: Vec<Option<Pending<P>>>,
    /// Reusable slab slots.
    free_slots: Vec<u32>,
    /// Messages in flight (`slots` entries that are `Some`).
    live: usize,
    deliveries: Vec<VecDeque<Delivery<P>>>,
    /// Nodes that received a delivery since the last
    /// [`Fabric::take_delivery_events`] drain — the wake-up signal the
    /// machine-level active-node engine subscribes to.
    delivery_events: ActiveSet,
    /// Flattened (port, vc) enumeration shared by all routers, used for
    /// round-robin allocation.
    input_vc_list: Vec<(usize, usize)>,
    /// Downstream **global** node of each output link, indexed
    /// `node * link_ports + port` — precomputed so the hot path never
    /// re-derives topology coordinates. [`NO_LINK`] marks absent ports
    /// (mesh edges, fat-tree leaf child ports, the root's parent port).
    neighbors: Vec<u32>,
    /// Input-port index at the downstream node of each output link,
    /// indexed like `neighbors` ([`NO_LINK_PORT`] where absent). On a
    /// torus this always equals the output port — the historical
    /// convention the tables preserve bit-exactly.
    link_in_ports: Vec<u16>,
    /// Upstream **global** node feeding each input port, indexed
    /// `node * link_ports + in_port` ([`NO_LINK`] where absent).
    upstream: Vec<u32>,
    /// Output-port index this input link occupies at its upstream node,
    /// indexed like `upstream` — where freed-buffer credits must land.
    upstream_ports: Vec<u16>,
    /// Flits buffered in each router's input VCs, maintained
    /// incrementally on every push/pop.
    occupancy: Vec<u32>,
    /// Routers with nonzero occupancy — the only ones phases 2–3 visit.
    active_routers: ActiveSet,
    /// Network interfaces with queued or streaming messages — the only
    /// ones phase 5 visits.
    active_nis: ActiveSet,
    /// Count of routed head flits waiting per
    /// `(node, output port, dateline class)`: switch allocation scans for
    /// a requester only when nonzero.
    requests: Vec<u32>,
    /// Scratch: snapshot of an [`ActiveSet`] for iteration.
    node_scratch: Vec<u32>,
    /// Scratch: last cycle's occupied-link worklist being drained.
    link_scratch: Vec<u32>,
    /// Scratch: last cycle's occupied-injection-channel worklist.
    inj_scratch: Vec<u32>,
    /// Scratch: credits freed during switch traversal, applied in phase 4.
    credit_scratch: Vec<CreditReturn>,
    next_id: u64,
    cycle: u64,
    stats: FabricStats,
    /// Per-component latency accounting and histograms, accumulated at
    /// delivery time alongside `stats` (kept out of `FabricStats`: the
    /// reference-engine equivalence tests compare that struct verbatim).
    breakdown: LatencyBreakdown,
    /// Bounded event trace; `None` unless `config.trace_capacity > 0`.
    trace: Option<TraceBuffer>,
    /// Active fault-injection plan, if any.
    fault: Option<FaultPlan>,
    /// Monotone count of flit movements (link placement, injection,
    /// ejection, loopback) since construction — never reset, so watchdogs
    /// can detect global stalls by watching it stop advancing.
    activity: u64,
    /// Flits buffered across all owned routers — the incrementally
    /// maintained sum of `occupancy`, kept for O(1) quiescence checks.
    buffered: u64,
    /// Messages ever injected here (monolithic fabrics: equals `next_id`;
    /// shard fabrics count only their own nodes' injections).
    injected_total: u64,
    /// Flits and credits that crossed out of this shard this cycle,
    /// drained by the shard driver. Always empty for a whole-torus
    /// fabric.
    boundary_out: Vec<BoundaryItem<P>>,
    /// `(message id, entry node, entry port, entry vc)` -> local slab
    /// slot for messages whose bookkeeping was transferred in from
    /// another shard while trailing flits still arrive carrying the
    /// sender's slot index. Keyed per boundary crossing, not per
    /// message: a wrapping route can leave and re-enter the same shard,
    /// so one worm may stream across two crossings concurrently, and
    /// the tail passing the first crossing must not tear down the entry
    /// the second still needs. Each entry dies with the tail flit at
    /// its own crossing.
    remap: HashMap<(u64, u32, u16, u16), u32>,
}

impl<P> Fabric<P> {
    /// Builds a fabric over the given topology (a bare [`Torus`] converts
    /// into [`Topology::Cube`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests fewer than
    /// [`DATELINE_VCS`] virtual channels or zero-capacity buffers.
    pub fn new(topology: impl Into<Topology>, config: FabricConfig) -> Self {
        let topology = topology.into();
        let nodes = topology.nodes();
        Self::new_shard(topology, config, 0, nodes)
    }

    /// Builds a fabric owning only the contiguous global node range
    /// `base .. base + owned` of `torus` — one shard of a partitioned
    /// simulation. Flits and credits crossing the range boundary are
    /// emitted as [`BoundaryItem`]s ([`Fabric::take_boundary`]) instead
    /// of traversing local links; the shard driver delivers them into the
    /// owning shard ([`Fabric::ingest_boundary`]) between cycles, which
    /// reproduces the one-cycle link latency exactly.
    ///
    /// # Panics
    ///
    /// Panics on a bad VC/buffer configuration (see [`Fabric::new`]) or
    /// an empty/out-of-range node range.
    pub fn new_shard(
        topology: impl Into<Topology>,
        config: FabricConfig,
        base: usize,
        owned: usize,
    ) -> Self {
        let topology = topology.into();
        assert!(
            config.link_vcs >= DATELINE_VCS,
            "tori require at least {DATELINE_VCS} virtual channels for deadlock freedom"
        );
        assert!(
            config.link_vcs.is_multiple_of(DATELINE_VCS),
            "virtual channels must split evenly between the dateline classes"
        );
        assert!(config.vc_buffer_capacity > 0, "buffers must hold flits");
        assert!(
            config.injection_buffer_capacity > 0,
            "buffers must hold flits"
        );
        assert!(owned > 0, "a shard must own at least one node");
        assert!(
            base + owned <= topology.nodes(),
            "shard range exceeds the topology"
        );
        let link_ports = topology.ports();
        let vc_stride = link_ports * config.link_vcs + 1;
        let mut out_credits = Vec::with_capacity(owned * vc_stride);
        for _ in 0..owned {
            for _ in 0..link_ports * config.link_vcs {
                out_credits.push(config.vc_buffer_capacity);
            }
            out_credits.push(INFINITE_CREDITS); // ejection pseudo-channel
        }
        let mut input_vc_list = Vec::new();
        for port in 0..link_ports {
            for vc in 0..config.link_vcs {
                input_vc_list.push((port, vc));
            }
        }
        input_vc_list.push((link_ports, 0)); // injection input
        let mut neighbors = Vec::with_capacity(owned * link_ports);
        let mut link_in_ports = Vec::with_capacity(owned * link_ports);
        let mut upstream = Vec::with_capacity(owned * link_ports);
        let mut upstream_ports = Vec::with_capacity(owned * link_ports);
        for node in base..base + owned {
            for port in 0..link_ports {
                match topology.link_dest(NodeId(node), port) {
                    Some(down) => {
                        neighbors.push(down.0 as u32);
                        link_in_ports
                            .push(topology.link_in_port(NodeId(node), port).unwrap() as u16);
                    }
                    None => {
                        neighbors.push(NO_LINK);
                        link_in_ports.push(NO_LINK_PORT);
                    }
                }
                match topology.upstream(NodeId(node), port) {
                    Some((up, up_port)) => {
                        upstream.push(up.0 as u32);
                        upstream_ports.push(up_port as u16);
                    }
                    None => {
                        upstream.push(NO_LINK);
                        upstream_ports.push(NO_LINK_PORT);
                    }
                }
            }
        }
        let stats = FabricStats::new(owned, link_ports);
        Self {
            topology,
            config,
            base,
            owned,
            in_fifo: (0..owned * vc_stride).map(|_| VecDeque::new()).collect(),
            in_route: vec![None; owned * vc_stride],
            in_routed_at: vec![0; owned * vc_stride],
            out_locked: vec![None; owned * vc_stride],
            out_credits,
            out_rr_input: vec![0; owned * vc_stride],
            out_rr_vc: vec![0; owned * (link_ports + 1)],
            links: vec![None; owned * link_ports],
            link_occupied: Vec::new(),
            inj_links: vec![None; owned],
            inj_occupied: Vec::new(),
            inj_credits: vec![config.injection_buffer_capacity; owned],
            nis: (0..owned).map(|_| NetworkInterface::default()).collect(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            deliveries: (0..owned).map(|_| VecDeque::new()).collect(),
            delivery_events: ActiveSet::new(owned),
            input_vc_list,
            neighbors,
            link_in_ports,
            upstream,
            upstream_ports,
            occupancy: vec![0; owned],
            active_routers: ActiveSet::new(owned),
            active_nis: ActiveSet::new(owned),
            requests: vec![0; owned * (link_ports + 1) * DATELINE_VCS],
            node_scratch: Vec::new(),
            link_scratch: Vec::new(),
            inj_scratch: Vec::new(),
            credit_scratch: Vec::new(),
            next_id: 0,
            cycle: 0,
            stats,
            breakdown: LatencyBreakdown::default(),
            trace: (config.trace_capacity > 0).then(|| TraceBuffer::new(config.trace_capacity)),
            fault: None,
            activity: 0,
            buffered: 0,
            injected_total: 0,
            boundary_out: Vec::new(),
            remap: HashMap::new(),
        }
    }

    /// Builds a fabric with an attached fault-injection plan. The plan's
    /// faults apply as the fabric steps; its log is available through
    /// [`Fabric::fault_log`].
    pub fn with_fault_plan(
        topology: impl Into<Topology>,
        config: FabricConfig,
        plan: FaultPlan,
    ) -> Self {
        let mut fabric = Self::new(topology, config);
        fabric.fault = Some(plan);
        fabric
    }

    /// Shard form of [`Fabric::with_fault_plan`]: the plan should be the
    /// global plan restricted to this shard's nodes
    /// ([`FaultPlan::restrict`]); the stateless per-site rolls then
    /// replay exactly as in the monolithic fabric.
    pub fn with_fault_plan_shard(
        topology: impl Into<Topology>,
        config: FabricConfig,
        base: usize,
        owned: usize,
        plan: FaultPlan,
    ) -> Self {
        let mut fabric = Self::new_shard(topology, config, base, owned);
        fabric.fault = Some(plan);
        fabric
    }

    /// Global id of the first node this fabric owns (`0` unless built by
    /// [`Fabric::new_shard`]).
    pub fn shard_base(&self) -> usize {
        self.base
    }

    /// Number of nodes this fabric owns.
    pub fn shard_owned(&self) -> usize {
        self.owned
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The log of injected faults (`None` when no plan is attached).
    pub fn fault_log(&self) -> Option<&FaultLog> {
        self.fault.as_ref().map(FaultPlan::log)
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The underlying torus (cube topologies only).
    ///
    /// # Panics
    ///
    /// Panics if the fabric was built over a non-cube topology; callers
    /// needing cube geometry must gate on [`Topology::family`].
    pub fn torus(&self) -> &Torus {
        self.topology.as_torus()
    }

    /// The buffering configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The current network cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Per-component latency accounting and histograms for the current
    /// measurement window (same window as [`Fabric::stats`]).
    pub fn breakdown(&self) -> &LatencyBreakdown {
        &self.breakdown
    }

    /// The event-trace ring, when
    /// [`FabricConfig::trace_capacity`] is nonzero.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Resets statistics counters and the latency breakdown (e.g. after a
    /// warmup window). Messages currently in flight still deliver and are
    /// counted against the new window. The event trace is deliberately
    /// *not* cleared: it is a ring, so stale warmup events age out on
    /// their own and a post-mortem can still see across the reset.
    pub fn reset_stats(&mut self) {
        self.stats.reset(self.cycle);
        self.breakdown.reset();
    }

    /// Enqueues a message for injection at its source node and returns its
    /// id. The injection queue is unbounded; queueing delay is visible in
    /// each [`Delivery`]'s timestamps.
    ///
    /// Messages to self (`src == dst`) are looped back through the
    /// interface without entering the network.
    ///
    /// # Panics
    ///
    /// Panics if the source or destination node is out of range.
    pub fn inject(&mut self, message: Message<P>) -> MessageId {
        let id = MessageId(self.next_id);
        self.next_id += 1;
        self.inject_with_id(id, message);
        id
    }

    /// Enqueues a message under a caller-assigned id — the shard driver's
    /// injection path. Fault rolls hash over message ids, so a sharded
    /// run must assign the same globally sequential ids the monolithic
    /// fabric would; the driver owns that counter and routes each
    /// injection to the shard owning its source node. Monolithic callers
    /// use [`Fabric::inject`], which assigns ids itself.
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range or the source is not owned by
    /// this fabric.
    pub fn inject_with_id(&mut self, id: MessageId, message: Message<P>) {
        // Traffic terminates only at compute nodes: switch-only nodes
        // (fat-tree internal levels) can relay but never source or sink.
        assert!(
            message.src.0 < self.topology.compute_nodes(),
            "source out of range"
        );
        assert!(
            message.dst.0 < self.topology.compute_nodes(),
            "destination out of range"
        );
        assert!(
            self.in_shard(message.src.0),
            "source not owned by this shard"
        );
        let src = message.src.0 - self.base;
        self.injected_total += 1;
        // Depth the new message finds ahead of it: queued plus streaming.
        let depth = self.nis[src].queue.len() as u64 + u64::from(self.nis[src].streaming.is_some());
        self.breakdown.queue_depth.record(depth);
        let pending = Pending {
            id: id.0,
            message,
            enqueued_at: self.cycle,
            injected_at: 0,
            dst_arrived_at: 0,
            head_delivered_at: 0,
            hops: 0,
            doomed: None,
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(pending);
                slot
            }
            None => {
                self.slots.push(Some(pending));
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        self.nis[src].queue.push_back((slot, id));
        self.active_nis.insert(src);
    }

    /// Number of messages injected but not yet delivered (queued,
    /// streaming, or in the network).
    pub fn in_flight(&self) -> usize {
        self.live
    }

    /// Messages waiting in a node's injection queue (including the one
    /// currently streaming).
    pub fn injection_backlog(&self, node: NodeId) -> usize {
        let n = node.0 - self.base;
        self.nis[n].queue.len() + usize::from(self.nis[n].streaming.is_some())
    }

    /// Takes the next completed delivery at `node`, if any.
    pub fn poll_delivery(&mut self, node: NodeId) -> Option<Delivery<P>> {
        self.deliveries[node.0 - self.base].pop_front()
    }

    /// Clears `out` and fills it (ascending) with the **global** ids of
    /// nodes that received a delivery since the previous drain, then
    /// resets the event set.
    ///
    /// This is the fabric-to-machine wake-up channel of the active-node
    /// engine: a drained event only says "a delivery was pushed for this
    /// node at some point"; the deliveries themselves stay queued until
    /// [`Fabric::poll_delivery`] consumes them.
    pub fn take_delivery_events(&mut self, out: &mut Vec<u32>) {
        self.delivery_events.collect_into(out);
        self.delivery_events.clear();
        if self.base != 0 {
            let base = self.base as u32;
            for node in out.iter_mut() {
                *node += base;
            }
        }
    }

    /// Total flits currently buffered across all routers (diagnostic).
    pub fn buffered_flits(&self) -> usize {
        self.buffered as usize
    }

    /// Flits currently buffered in each router, indexed by node
    /// (diagnostic; feeds watchdog stall dumps). Served from the engine's
    /// incrementally maintained counters — O(nodes), no per-VC scan.
    pub fn router_occupancy(&self) -> Vec<usize> {
        self.occupancy.iter().map(|&c| c as usize).collect()
    }

    /// Monotone count of flit movements since construction. A fabric
    /// making progress keeps advancing this; a wedged fabric does not.
    pub fn activity(&self) -> u64 {
        self.activity
    }

    /// Total messages ever injected (not windowed, unlike
    /// [`FabricStats::injected_messages`]). With windowless stats,
    /// `delivered + dropped + in_flight == total_injected` always holds —
    /// the message-conservation invariant the fault tests assert. Shard
    /// fabrics count only injections at their own nodes; the driver sums
    /// across shards for the global invariant.
    pub fn total_injected(&self) -> u64 {
        self.injected_total
    }

    /// Advances the fabric by one network cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] if internal bookkeeping is found
    /// inconsistent (a flit referencing an unknown message, or an
    /// arbitration selecting an empty buffer).
    pub fn step(&mut self) -> Result<(), FabricError> {
        self.cycle += 1;
        self.stats.cycles += 1;
        if let Some(plan) = self.fault.as_mut() {
            plan.activate(self.cycle);
        }
        self.deliver_links();
        // Snapshot the routers holding flits once; phases 2 and 3 share
        // it (routing moves no flits, so occupancy is stable in between).
        let mut active = mem::take(&mut self.node_scratch);
        self.active_routers.collect_into(&mut active);
        let result = self
            .compute_routes(&active)
            .and_then(|()| self.switch_traversal(&active));
        self.node_scratch = active;
        result?;
        self.apply_credit_returns();
        self.inject_flits()
    }

    /// Advances the fabric until no messages remain in flight or
    /// `max_cycles` elapse; returns `true` if the fabric drained.
    ///
    /// # Errors
    ///
    /// Propagates any [`FabricError`] raised by [`Fabric::step`].
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Result<bool, FabricError> {
        for _ in 0..max_cycles {
            if self.live == 0 {
                return Ok(true);
            }
            self.step()?;
        }
        Ok(self.live == 0)
    }

    /// Jumps the clock forward `cycles` cycles without stepping, valid
    /// only when the fabric is completely quiescent (no messages in
    /// flight anywhere: buffers, links, queues). Returns the number of
    /// cycles actually skipped — `0` if traffic is in flight, in which
    /// case the caller must [`step`](Fabric::step) instead.
    ///
    /// Cycle accuracy is preserved exactly: an idle fabric's step is a
    /// pure clock tick (no flit moves, no arbitration state changes, no
    /// RNG rolls), except that scheduled faults may fire. This method
    /// walks the scheduled-fault cycles inside the gap in order and fires
    /// each at its exact cycle, so the resulting state — clock, stats,
    /// fault log, stall windows — is identical to having stepped
    /// cycle by cycle (asserted by the equivalence tests).
    pub fn fast_forward(&mut self, cycles: u64) -> u64 {
        if !self.is_quiescent() {
            return 0;
        }
        let target = self.cycle + cycles;
        while let Some(next) = self
            .fault
            .as_ref()
            .and_then(|plan| plan.next_scheduled(self.cycle))
        {
            if next > target {
                break;
            }
            self.stats.cycles += next - self.cycle;
            self.cycle = next;
            if let Some(plan) = self.fault.as_mut() {
                plan.activate(next);
            }
        }
        self.stats.cycles += target - self.cycle;
        self.cycle = target;
        if let Some(plan) = self.fault.as_mut() {
            plan.activate(target);
        }
        cycles
    }

    /// Absolute-cycle form of [`Fabric::fast_forward`], for machine-level
    /// callers that think in horizons rather than deltas: jumps the clock
    /// to `target` (a no-op if the clock is already there or past it) and
    /// returns the cycles actually skipped — `0` if traffic is in flight.
    pub fn fast_forward_to(&mut self, target: u64) -> u64 {
        if target <= self.cycle {
            return 0;
        }
        self.fast_forward(target - self.cycle)
    }

    /// Whether nothing at all is in motion here: no live messages, no
    /// buffered flits, nothing on links or injection channels, no
    /// undrained boundary traffic, and no partially transferred messages.
    /// For a whole-torus fabric this is equivalent to
    /// `in_flight() == 0`; a shard can hold trailing flits of messages
    /// whose slab bookkeeping already moved to another shard, which the
    /// extra terms account for. All O(1).
    pub fn is_quiescent(&self) -> bool {
        self.live == 0
            && self.buffered == 0
            && self.link_occupied.is_empty()
            && self.inj_occupied.is_empty()
            && self.boundary_out.is_empty()
            && self.remap.is_empty()
    }

    fn link_ports(&self) -> usize {
        self.topology.ports()
    }

    /// Index of the injection input / ejection output port.
    fn local_port(&self) -> usize {
        self.topology.ports()
    }

    /// Virtual channels per node in the flattened VC arrays.
    fn vc_stride(&self) -> usize {
        self.link_ports() * self.config.link_vcs + 1
    }

    /// Index of `(local node, port, vc)` in the flattened VC arrays.
    /// The injection/ejection port (`port == link_ports`, `vc == 0`)
    /// lands on the trailing slot of the node's block.
    #[inline]
    fn vc_idx(&self, node: usize, port: usize, vc: usize) -> usize {
        node * self.vc_stride() + port * self.config.link_vcs + vc
    }

    /// Virtual channels on a port: `link_vcs` for link ports, one for the
    /// injection/ejection port.
    #[inline]
    fn port_vcs(&self, port: usize) -> usize {
        if port == self.link_ports() {
            1
        } else {
            self.config.link_vcs
        }
    }

    /// Whether a global node id falls in this fabric's owned range.
    #[inline]
    fn in_shard(&self, global: usize) -> bool {
        global >= self.base && global < self.base + self.owned
    }

    /// Index into `requests` for `(local node, output port, dateline
    /// class)`.
    fn req_index(&self, node: usize, output: usize, class: usize) -> usize {
        (node * (self.link_ports() + 1) + output) * DATELINE_VCS + class
    }

    /// Phase 1: flits in transit arrive in downstream input buffers.
    /// Visits only the links and injection channels that carry a flit.
    fn deliver_links(&mut self) {
        let local = self.local_port();
        mem::swap(&mut self.link_occupied, &mut self.link_scratch);
        for i in 0..self.link_scratch.len() {
            let li = self.link_scratch[i] as usize;
            let Some((flit, vc)) = self.links[li].take() else {
                continue;
            };
            // Cross-shard flits never enter `links`, so the downstream
            // node of a locally occupied link is always owned.
            let down = self.neighbors[li] as usize;
            let node = down - self.base;
            let port = self.link_in_ports[li] as usize;
            let idx = self.vc_idx(node, port, vc);
            debug_assert!(
                self.in_fifo[idx].len() < self.config.vc_buffer_capacity,
                "credit protocol violated"
            );
            self.in_fifo[idx].push_back(flit);
            // Stamp the head's arrival at its destination router — the
            // boundary between in-network (hop) time and ejection wait in
            // the latency breakdown. One slab lookup per head per hop.
            if flit.kind.is_head() {
                if let Some(pending) = self.slots[flit.slot as usize].as_mut() {
                    if pending.id == flit.message.0 && pending.message.dst.0 == down {
                        pending.dst_arrived_at = self.cycle;
                    }
                }
            }
            self.occupancy[node] += 1;
            self.buffered += 1;
            self.active_routers.insert(node);
        }
        self.link_scratch.clear();
        mem::swap(&mut self.inj_occupied, &mut self.inj_scratch);
        for i in 0..self.inj_scratch.len() {
            let node = self.inj_scratch[i] as usize;
            let Some(flit) = self.inj_links[node].take() else {
                continue;
            };
            let idx = self.vc_idx(node, local, 0);
            debug_assert!(
                self.in_fifo[idx].len() < self.config.injection_buffer_capacity,
                "injection credit protocol violated"
            );
            self.in_fifo[idx].push_back(flit);
            self.occupancy[node] += 1;
            self.buffered += 1;
            self.active_routers.insert(node);
        }
        self.inj_scratch.clear();
    }

    /// Phase 2: assign routes to head flits now at buffer fronts, and
    /// count each new assignment as a pending switch request.
    fn compute_routes(&mut self, active: &[u32]) -> Result<(), FabricError> {
        let local = self.local_port();
        let stride = self.vc_stride();
        for &n in active {
            let node = n as usize;
            let global = NodeId(self.base + node);
            // Walking the node's flattened VC block visits (port, vc) in
            // exactly the old port-major, injection-last order.
            for idx in node * stride..(node + 1) * stride {
                if self.in_route[idx].is_some() {
                    continue;
                }
                let Some(front) = self.in_fifo[idx].front() else {
                    continue;
                };
                if !front.kind.is_head() {
                    continue;
                }
                let message = front.message;
                let slot = front.slot as usize;
                let pending = self
                    .slots
                    .get(slot)
                    .and_then(Option::as_ref)
                    .filter(|p| p.id == message.0)
                    .ok_or(FabricError::UnknownMessage {
                        message,
                        context: "route computation",
                        cycle: self.cycle,
                    })?;
                let (src, dst) = (pending.message.src, pending.message.dst);
                let step = self.topology.route_hop(src, dst, global);
                let output = match step {
                    PortStep::Eject => OutputRef { port: local, vc: 0 },
                    PortStep::Forward { port, vc } => OutputRef { port, vc },
                };
                self.in_route[idx] = Some(output);
                self.in_routed_at[idx] = self.cycle;
                // `output.vc` is the dateline class here, matching the
                // decrement when this head is forwarded.
                let ridx = self.req_index(node, output.port, output.vc);
                self.requests[ridx] += 1;
            }
        }
        Ok(())
    }

    /// Phase 3: each output physical channel forwards at most one flit.
    /// Visits only routers holding flits, in ascending node order — the
    /// same order the full scan used, so arbitration and fault rolls are
    /// bit-for-bit identical (idle routers can never forward, so skipping
    /// them is invisible).
    ///
    /// Faulted outputs (killed or stalled links, stalled routers) forward
    /// nothing; their traffic waits in input buffers and backpressure
    /// propagates upstream through the ordinary credit mechanism.
    fn switch_traversal(&mut self, active: &[u32]) -> Result<(), FabricError> {
        let link_ports = self.link_ports();
        let output_count = link_ports + 1;
        for &n in active {
            let node = n as usize;
            // Faults are keyed by global node id: a restricted shard plan
            // replays the monolithic plan's decisions exactly.
            let global = self.base + node;
            if let Some(plan) = self.fault.as_ref() {
                if plan.router_stalled(self.cycle, global) {
                    continue;
                }
            }
            for output in 0..output_count {
                if output < link_ports {
                    if let Some(plan) = self.fault.as_ref() {
                        if plan.link_blocked(self.cycle, global, output) {
                            continue;
                        }
                    }
                }
                if let Some((input, out_vc)) = self.pick_sender(node, output) {
                    self.forward_flit(node, output, out_vc, input)?;
                }
            }
        }
        Ok(())
    }

    /// Chooses which input VC (if any) sends on output `output` of router
    /// `node` this cycle, allocating the output VC to a new message when
    /// unlocked. Returns the chosen input and output VC.
    fn pick_sender(&mut self, node: usize, output: usize) -> Option<(InputRef, VcIndex)> {
        let vc_count = self.port_vcs(output);
        let rr = node * (self.link_ports() + 1) + output;
        for i in 0..vc_count {
            let w = (self.out_rr_vc[rr] + i) % vc_count;
            let ovc = self.vc_idx(node, output, w);
            if self.out_credits[ovc] == 0 {
                continue;
            }
            if let Some(input) = self.out_locked[ovc] {
                // Continue the wormhole if the next flit has arrived.
                let buf = self.vc_idx(node, input.port, input.vc);
                if self.in_fifo[buf].front().is_some() {
                    self.out_rr_vc[rr] = (w + 1) % vc_count;
                    return Some((input, w));
                }
            } else {
                // The arbitration scan succeeds iff a routed head waits
                // for this (output, class) — exactly when the request
                // counter is nonzero, so the scan is skipped otherwise.
                let class = self.vc_class(output, w);
                if self.requests[self.req_index(node, output, class)] == 0 {
                    continue;
                }
                if let Some(input) = self.find_requester(node, output, w) {
                    // Allocate this output VC to a new message and forward
                    // its head immediately.
                    self.out_locked[ovc] = Some(input);
                    self.out_rr_vc[rr] = (w + 1) % vc_count;
                    return Some((input, w));
                }
            }
        }
        None
    }

    /// Round-robin search for an input VC whose routed message requests
    /// output VC `(output, w)` and whose head flit is at the front.
    fn find_requester(&mut self, node: usize, output: usize, w: VcIndex) -> Option<InputRef> {
        let list_len = self.input_vc_list.len();
        let ovc = self.vc_idx(node, output, w);
        let start = self.out_rr_input[ovc];
        // `route.vc` is the dateline class; output VC `w` serves it if it
        // falls in that class's half of the channel set.
        let class = self.vc_class(output, w);
        for i in 0..list_len {
            let idx = (start + i) % list_len;
            let (port, vc) = self.input_vc_list[idx];
            let buf = self.vc_idx(node, port, vc);
            let Some(route) = self.in_route[buf] else {
                continue;
            };
            if route.port != output || class != route.vc {
                continue;
            }
            let Some(front) = self.in_fifo[buf].front() else {
                continue;
            };
            if !front.kind.is_head() {
                // A body/tail flit at the front means this VC's message is
                // already locked somewhere; not a new request.
                continue;
            }
            self.out_rr_input[ovc] = (idx + 1) % list_len;
            return Some(InputRef { port, vc });
        }
        None
    }

    /// The dateline class an output VC serves: lower half of a link's VCs
    /// is class 0, upper half class 1. Local (ejection) ports have a
    /// single class-0 VC.
    fn vc_class(&self, output: usize, w: VcIndex) -> usize {
        if output == self.local_port() || w < self.config.link_vcs / DATELINE_VCS {
            0
        } else {
            1
        }
    }

    /// Moves one flit from `input` of router `node` out through
    /// `(output, out_vc)` — onto a link, into the local delivery queue, or
    /// (for fault-doomed messages) into the void.
    fn forward_flit(
        &mut self,
        node: usize,
        output: usize,
        out_vc: VcIndex,
        input: InputRef,
    ) -> Result<(), FabricError> {
        let local = self.local_port();
        let global = self.base + node;
        let (flit, route_class, routed_at) = {
            let buf = self.vc_idx(node, input.port, input.vc);
            let route_class = self.in_route[buf].map_or(0, |r| r.vc);
            let routed_at = self.in_routed_at[buf];
            let flit = self.in_fifo[buf]
                .pop_front()
                .ok_or(FabricError::MissingFlit {
                    node: NodeId(global),
                    cycle: self.cycle,
                })?;
            if flit.kind.is_tail() {
                self.in_route[buf] = None;
            }
            (flit, route_class, routed_at)
        };
        self.occupancy[node] -= 1;
        self.buffered -= 1;
        if self.occupancy[node] == 0 {
            self.active_routers.remove(node);
        }
        if flit.kind.is_head() {
            // A head departs only through its routed output: retire the
            // request counted at route assignment.
            let idx = self.req_index(node, output, route_class);
            self.requests[idx] -= 1;
            if let Some(trace) = self.trace.as_mut() {
                // Routed in phase 2, forwardable in phase 3 of the same
                // cycle: any later departure means it sat blocked.
                let waited = self.cycle - routed_at;
                if waited > 0 {
                    trace.push(TraceEvent::HopBlock {
                        cycle: self.cycle,
                        message: flit.message,
                        node: NodeId(global),
                        waited,
                    });
                }
            }
        }
        // Free the slot upstream.
        if input.port == local {
            self.credit_scratch.push(CreditReturn::Injection { node });
        } else {
            // The upstream router feeding input port `p`, and the output
            // port this link occupies there, come from the precomputed
            // upstream tables (on a torus: the neighbor behind the
            // opposite-direction port `p ^ 1`, at its own port `p`).
            let ui = node * self.link_ports() + input.port;
            let upstream = self.upstream[ui] as usize;
            let up_port = self.upstream_ports[ui] as usize;
            debug_assert_ne!(self.upstream[ui], NO_LINK, "flit arrived on absent link");
            if self.in_shard(upstream) {
                self.credit_scratch.push(CreditReturn::Link {
                    node: upstream - self.base,
                    port: up_port,
                    vc: input.vc,
                });
            } else {
                // The freed slot belongs to an output VC in another
                // shard: hand the credit across the boundary. The
                // exchange applies it before the next cycle's allocation
                // reads it — the same visibility the monolithic phase-4
                // return provides.
                self.boundary_out
                    .push(BoundaryItem(BoundaryPayload::Credit {
                        node: upstream as u32,
                        port: up_port as u16,
                        vc: input.vc as u16,
                    }));
            }
        }
        // Release the wormhole lock on a tail.
        if flit.kind.is_tail() {
            let ovc = self.vc_idx(node, output, out_vc);
            self.out_locked[ovc] = None;
        }
        // Fault rolls happen once per message per link crossing, on the
        // head flit, keyed by global node id so a given seed replays
        // exactly — sharded or not.
        let slot = flit.slot as usize;
        let mut doomed_here = self.slots[slot].as_ref().is_some_and(|p| {
            p.id == flit.message.0 && p.doomed == Some((global as u32, output as u32))
        });
        if !doomed_here && output != local && flit.kind.is_head() {
            if let Some(plan) = self.fault.as_mut() {
                if let Some(mask) = plan.roll_corrupt(self.cycle, global, output, flit.message) {
                    if let Some(pending) =
                        self.slots[slot].as_mut().filter(|p| p.id == flit.message.0)
                    {
                        // Count messages, not events: a worm crossing many
                        // links may be corrupted more than once.
                        if pending.message.is_intact() {
                            self.stats.corrupted_messages += 1;
                        }
                        pending.message.checksum ^= mask;
                    }
                }
                if plan.roll_drop(self.cycle, global, output, flit.message) {
                    if let Some(pending) =
                        self.slots[slot].as_mut().filter(|p| p.id == flit.message.0)
                    {
                        pending.doomed = Some((global as u32, output as u32));
                    }
                    doomed_here = true;
                }
                plan.roll_stall(self.cycle, global, output);
            }
        }
        if doomed_here {
            // The worm drains into the faulty link and evaporates: the
            // flit is consumed (its upstream slot was credited normally,
            // keeping flow control consistent) but never reaches the link,
            // so no downstream credits are spent and nothing is delivered.
            // A doomed head never crosses a shard boundary, so the whole
            // worm evaporates in the shard that rolled the drop.
            self.stats.dropped_flits += 1;
            self.activity += 1;
            if flit.kind.is_tail()
                && self.slots[slot]
                    .as_ref()
                    .is_some_and(|p| p.id == flit.message.0)
            {
                self.slots[slot] = None;
                self.free_slots.push(slot as u32);
                self.live -= 1;
                self.stats.dropped_messages += 1;
                if let Some(trace) = self.trace.as_mut() {
                    trace.push(TraceEvent::Drop {
                        cycle: self.cycle,
                        message: flit.message,
                        node: NodeId(global),
                    });
                }
            }
        } else if output == local {
            self.eject_flit(node, flit)?;
        } else {
            let ovc = self.vc_idx(node, output, out_vc);
            debug_assert!(self.out_credits[ovc] > 0 && self.out_credits[ovc] != INFINITE_CREDITS);
            self.out_credits[ovc] -= 1;
            let li = node * self.link_ports() + output;
            self.stats.link_busy[li] += 1;
            self.stats.link_flits += 1;
            self.activity += 1;
            let down = self.neighbors[li] as usize;
            if self.in_shard(down) {
                debug_assert!(self.links[li].is_none(), "one flit per link per cycle");
                self.links[li] = Some((flit, out_vc));
                self.link_occupied.push(li as u32);
            } else {
                // Crossing a shard boundary: the flit leaves on this link
                // but lands in another shard's fabric next cycle. A head
                // carries the message's slab bookkeeping with it; trailing
                // flits are re-pointed at the receiver's slab through its
                // per-crossing remap.
                let mut transfer = None;
                if flit.kind.is_head()
                    && self.slots[slot]
                        .as_ref()
                        .is_some_and(|p| p.id == flit.message.0)
                {
                    if let Some(pending) = self.slots[slot].take() {
                        self.free_slots.push(slot as u32);
                        self.live -= 1;
                        transfer = Some(Box::new(pending));
                    }
                }
                self.boundary_out.push(BoundaryItem(BoundaryPayload::Flit {
                    down: down as u32,
                    port: self.link_in_ports[li],
                    vc: out_vc as u16,
                    flit,
                    transfer,
                }));
            }
        }
        Ok(())
    }

    /// Consumes a flit at its destination, completing the message on its
    /// tail.
    fn eject_flit(&mut self, node: usize, flit: Flit) -> Result<(), FabricError> {
        self.stats.ejection_busy[node] += 1;
        self.activity += 1;
        let cycle = self.cycle;
        let slot = flit.slot as usize;
        let unknown = move |context| FabricError::UnknownMessage {
            message: flit.message,
            context,
            cycle,
        };
        let pending = self
            .slots
            .get_mut(slot)
            .and_then(Option::as_mut)
            .filter(|p| p.id == flit.message.0)
            .ok_or(unknown("ejection"))?;
        if flit.kind.is_head() {
            pending.head_delivered_at = cycle;
            pending.hops =
                self.topology
                    .distance(pending.message.src, pending.message.dst) as u32;
        }
        if flit.kind.is_tail() {
            let pending = self.slots[slot].take().ok_or(unknown("tail ejection"))?;
            self.free_slots.push(slot as u32);
            self.live -= 1;
            let delivery = Delivery {
                enqueued_at: pending.enqueued_at,
                injected_at: pending.injected_at,
                dst_arrived_at: pending.dst_arrived_at,
                head_delivered_at: pending.head_delivered_at,
                delivered_at: self.cycle,
                hops: pending.hops,
                message: pending.message,
            };
            self.stats.record_delivery(
                delivery.total_latency(),
                delivery.head_network_latency(),
                delivery.hops,
                delivery.injected_at - delivery.enqueued_at,
                delivery.message.length,
            );
            self.breakdown.record(&delivery.breakdown());
            if let Some(trace) = self.trace.as_mut() {
                trace.push(TraceEvent::Deliver {
                    cycle: self.cycle,
                    message: flit.message,
                    dst: NodeId(self.base + node),
                    total_latency: delivery.total_latency(),
                    hops: delivery.hops,
                });
            }
            self.deliveries[node].push_back(delivery);
            self.delivery_events.insert(node);
        }
        Ok(())
    }

    /// Phase 4: freed buffer slots become visible upstream. Drains the
    /// reusable credit scratch filled during switch traversal.
    fn apply_credit_returns(&mut self) {
        let link_ports = self.link_ports();
        for i in 0..self.credit_scratch.len() {
            match self.credit_scratch[i] {
                CreditReturn::Injection { node } => {
                    self.inj_credits[node] += 1;
                    debug_assert!(self.inj_credits[node] <= self.config.injection_buffer_capacity);
                }
                CreditReturn::Link { node, port, vc } => {
                    debug_assert!(port < link_ports);
                    let ovc = self.vc_idx(node, port, vc);
                    self.out_credits[ovc] += 1;
                    debug_assert!(self.out_credits[ovc] <= self.config.vc_buffer_capacity);
                }
            }
        }
        self.credit_scratch.clear();
    }

    /// Phase 5: network interfaces stream flits into their routers.
    /// Visits only interfaces with queued or streaming messages.
    fn inject_flits(&mut self) -> Result<(), FabricError> {
        let mut active = mem::take(&mut self.node_scratch);
        self.active_nis.collect_into(&mut active);
        let result = self.inject_active(&active);
        self.node_scratch = active;
        result
    }

    fn inject_active(&mut self, active: &[u32]) -> Result<(), FabricError> {
        for &n in active {
            let node = n as usize;
            if self.nis[node].queue.is_empty() && self.nis[node].streaming.is_none() {
                // Nothing left to send; any flit still on the injection
                // channel is tracked by the occupied-channel worklist.
                self.active_nis.remove(node);
                continue;
            }
            if self.inj_links[node].is_some() {
                continue;
            }
            // Start streaming the next message if idle, looping back
            // self-addressed messages without touching the network.
            while self.nis[node].streaming.is_none() {
                let Some((slot, id)) = self.nis[node].queue.pop_front() else {
                    break;
                };
                let cycle = self.cycle;
                let unknown = move |context| FabricError::UnknownMessage {
                    message: id,
                    context,
                    cycle,
                };
                let Some(pending) = self.slots[slot as usize].as_mut().filter(|p| p.id == id.0)
                else {
                    return Err(unknown("injection queue"));
                };
                if pending.message.src == pending.message.dst {
                    pending.injected_at = cycle;
                    let pending = self.slots[slot as usize]
                        .take()
                        .ok_or(unknown("loopback delivery"))?;
                    self.free_slots.push(slot);
                    self.live -= 1;
                    let base = self.base;
                    let delivery = Delivery {
                        enqueued_at: pending.enqueued_at,
                        injected_at: cycle,
                        dst_arrived_at: cycle,
                        head_delivered_at: cycle,
                        delivered_at: cycle,
                        hops: 0,
                        message: pending.message,
                    };
                    self.stats.record_delivery(
                        delivery.total_latency(),
                        0,
                        0,
                        delivery.injected_at - delivery.enqueued_at,
                        delivery.message.length,
                    );
                    self.breakdown.record(&delivery.breakdown());
                    if let Some(trace) = self.trace.as_mut() {
                        trace.push(TraceEvent::Deliver {
                            cycle,
                            message: id,
                            dst: delivery.message.dst,
                            total_latency: delivery.total_latency(),
                            hops: 0,
                        });
                    }
                    let dst = delivery.message.dst.0 - base;
                    self.deliveries[dst].push_back(delivery);
                    self.delivery_events.insert(dst);
                    self.activity += 1;
                    // Loopback consumes this cycle's injection slot.
                    break;
                }
                let length = pending.message.length;
                self.nis[node].streaming = Some((slot, id, 0, length));
            }
            let Some((slot, id, index, length)) = self.nis[node].streaming else {
                if self.nis[node].queue.is_empty() {
                    self.active_nis.remove(node);
                }
                continue;
            };
            if self.inj_credits[node] == 0 {
                continue;
            }
            // The flit kind comes from the cached length: the slab entry
            // is only guaranteed local until the head enters the network
            // (in a sharded run it can migrate away mid-stream).
            let kind = if length == 1 {
                FlitKind::HeadTail
            } else if index == 0 {
                FlitKind::Head
            } else if index + 1 == length {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            if index == 0 {
                let (src, dst);
                {
                    let Some(pending) = self.slots[slot as usize].as_mut().filter(|p| p.id == id.0)
                    else {
                        return Err(FabricError::UnknownMessage {
                            message: id,
                            context: "injection streaming",
                            cycle: self.cycle,
                        });
                    };
                    pending.injected_at = self.cycle;
                    src = pending.message.src;
                    dst = pending.message.dst;
                }
                self.stats.injected_messages += 1;
                if let Some(trace) = self.trace.as_mut() {
                    trace.push(TraceEvent::Inject {
                        cycle: self.cycle,
                        message: id,
                        src,
                        dst,
                        length,
                    });
                }
            }
            self.inj_links[node] = Some(Flit {
                message: id,
                kind,
                slot,
            });
            self.inj_occupied.push(n);
            self.inj_credits[node] -= 1;
            self.stats.injected_flits += 1;
            self.stats.injection_busy[node] += 1;
            self.activity += 1;
            if index + 1 == length {
                self.nis[node].streaming = None;
                if self.nis[node].queue.is_empty() {
                    self.active_nis.remove(node);
                }
            } else {
                self.nis[node].streaming = Some((slot, id, index + 1, length));
            }
        }
        Ok(())
    }

    /// Drains the flits and credits that crossed out of this shard during
    /// the last [`Fabric::step`], appending them to `out` in the
    /// deterministic order switch traversal produced them (ascending
    /// node, then output port). Always empty for a whole-torus fabric.
    pub fn take_boundary(&mut self, out: &mut Vec<BoundaryItem<P>>) {
        out.append(&mut self.boundary_out);
    }

    /// Whether the last step produced boundary traffic (cheap peek for
    /// the shard driver).
    pub fn has_boundary(&self) -> bool {
        !self.boundary_out.is_empty()
    }

    /// Ingests one boundary item produced by another shard's
    /// [`Fabric::take_boundary`]. Must be called between steps, after
    /// every shard has finished the cycle that produced the item; the
    /// flit then becomes visible to routing exactly one cycle after it
    /// left the sender — the monolithic link latency.
    ///
    /// # Panics
    ///
    /// Panics (via indexing) if the item's target node is not owned by
    /// this fabric.
    pub fn ingest_boundary(&mut self, item: BoundaryItem<P>) {
        match item.0 {
            BoundaryPayload::Flit {
                down,
                port,
                vc,
                mut flit,
                transfer,
            } => {
                let node = down as usize - self.base;
                let crossing = (flit.message.0, down, port, vc);
                if let Some(pending) = transfer {
                    debug_assert_eq!(pending.id, flit.message.0);
                    let pending = *pending;
                    let slot = match self.free_slots.pop() {
                        Some(slot) => {
                            self.slots[slot as usize] = Some(pending);
                            slot
                        }
                        None => {
                            self.slots.push(Some(pending));
                            (self.slots.len() - 1) as u32
                        }
                    };
                    self.live += 1;
                    self.remap.insert(crossing, slot);
                }
                // Re-point the flit at the local slab: the slot it
                // carries indexes the sender's slab. Worm flits cross
                // each boundary link in order, so the head's transfer
                // above seeds this crossing's remap entry before any
                // trailing flit needs it. (At a crossing the message
                // has since left through, the entry's slot is stale —
                // harmless, because every consumer of `flit.slot`
                // checks the slab entry's id first, and such flits
                // always exit the shard and get re-mapped downstream.)
                if let Some(&slot) = self.remap.get(&crossing) {
                    flit.slot = slot;
                }
                if flit.kind.is_tail() {
                    self.remap.remove(&crossing);
                }
                // Stamp the head's destination arrival. The receiver's
                // clock still reads the cycle that produced the flit; it
                // enters the input buffer at what is phase 1 of the next
                // cycle, which is when the monolithic engine stamps it.
                if flit.kind.is_head() {
                    if let Some(pending) = self.slots[flit.slot as usize].as_mut() {
                        if pending.id == flit.message.0 && pending.message.dst.0 == down as usize {
                            pending.dst_arrived_at = self.cycle + 1;
                        }
                    }
                }
                let idx = self.vc_idx(node, port as usize, vc as usize);
                debug_assert!(
                    self.in_fifo[idx].len() < self.config.vc_buffer_capacity,
                    "boundary credit protocol violated"
                );
                self.in_fifo[idx].push_back(flit);
                self.occupancy[node] += 1;
                self.buffered += 1;
                self.active_routers.insert(node);
            }
            BoundaryPayload::Credit { node, port, vc } => {
                let local = node as usize - self.base;
                let ovc = self.vc_idx(local, port as usize, vc as usize);
                self.out_credits[ovc] += 1;
                debug_assert!(self.out_credits[ovc] <= self.config.vc_buffer_capacity);
            }
        }
    }
}

/// A flit or credit leaving one shard for another, produced by a shard
/// fabric's switch traversal ([`Fabric::take_boundary`]) and delivered by
/// the shard driver into the owning fabric
/// ([`Fabric::ingest_boundary`]) before the next cycle. Opaque to the
/// driver, which only needs [`BoundaryItem::dst_node`] for routing.
#[derive(Debug, Clone)]
pub struct BoundaryItem<P>(BoundaryPayload<P>);

#[derive(Debug, Clone)]
enum BoundaryPayload<P> {
    /// A flit crossing from an owned node's output `port` onto global
    /// node `down`'s matching input port. Heads carry the message's slab
    /// entry to the receiving shard.
    Flit {
        down: u32,
        port: u16,
        vc: u16,
        flit: Flit,
        transfer: Option<Box<Pending<P>>>,
    },
    /// A buffer slot freed in the producing shard whose upstream output
    /// VC lives on global node `node` in another shard.
    Credit { node: u32, port: u16, vc: u16 },
}

impl<P> BoundaryItem<P> {
    /// The global node in whose shard this item must land.
    pub fn dst_node(&self) -> usize {
        match &self.0 {
            BoundaryPayload::Flit { down, .. } => *down as usize,
            BoundaryPayload::Credit { node, .. } => *node as usize,
        }
    }
}

/// A buffer slot freed during switch traversal, to be credited upstream.
#[derive(Debug, Clone, Copy)]
enum CreditReturn {
    /// Slot freed in a router's injection input buffer.
    Injection { node: usize },
    /// Slot freed in the input buffer fed by `node`'s output `port`,
    /// virtual channel `vc`.
    Link {
        node: usize,
        port: usize,
        vc: VcIndex,
    },
}

/// Sentinel in the `neighbors`/`upstream` tables for an absent link.
const NO_LINK: u32 = u32::MAX;

/// Sentinel in the port tables for an absent link.
const NO_LINK_PORT: u16 = u16::MAX;

/// Maps a torus/mesh link port index to its (dimension, direction).
pub(crate) fn port_to_link(port: usize) -> (u32, Direction) {
    let dim = (port / 2) as u32;
    let dir = if port.is_multiple_of(2) {
        Direction::Plus
    } else {
        Direction::Minus
    };
    (dim, dir)
}

/// Maps a (dimension, direction) to its torus/mesh link port index.
pub(crate) fn link_to_port(dim: u32, direction: Direction) -> usize {
    dim as usize * 2 + direction.index()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric<u32> {
        Fabric::new(Torus::new(2, 8), FabricConfig::default())
    }

    #[test]
    fn port_link_round_trip() {
        for dim in 0..3 {
            for dir in Direction::ALL {
                assert_eq!(port_to_link(link_to_port(dim, dir)), (dim, dir));
            }
        }
    }

    #[test]
    #[should_panic(expected = "virtual channels")]
    fn rejects_single_vc() {
        let cfg = FabricConfig {
            link_vcs: 1,
            ..FabricConfig::default()
        };
        let _ = Fabric::<()>::new(Torus::new(2, 4), cfg);
    }

    #[test]
    fn single_message_unloaded_latency() {
        let mut f = fabric();
        let src = NodeId(0);
        let dst = f.torus().node_at(&[3, 2]); // 5 hops
        f.inject(Message::new(src, dst, 12, 7u32));
        assert!(f.run_until_idle(1000).unwrap());
        let d = f.poll_delivery(dst).expect("delivered");
        assert_eq!(d.hops, 5);
        // Head: 1 cycle on the injection channel + 1 per hop.
        assert_eq!(d.head_delivered_at - d.injected_at, 6);
        // Tail follows B-1 flits behind the head.
        assert_eq!(d.delivered_at - d.head_delivered_at, 11);
        assert_eq!(d.message.payload, 7);
    }

    #[test]
    fn self_message_loops_back() {
        let mut f = fabric();
        f.inject(Message::new(NodeId(5), NodeId(5), 12, 1u32));
        assert!(f.run_until_idle(10).unwrap());
        let d = f.poll_delivery(NodeId(5)).expect("delivered");
        assert_eq!(d.hops, 0);
        assert!(d.total_latency() <= 2);
        // Loopback never touches the network links.
        assert_eq!(f.stats().link_flits, 0);
    }

    #[test]
    fn deliveries_in_order_for_same_pair() {
        let mut f = fabric();
        let src = NodeId(0);
        let dst = NodeId(9);
        for i in 0..20u32 {
            f.inject(Message::new(src, dst, 4, i));
        }
        assert!(f.run_until_idle(10_000).unwrap());
        let mut got = Vec::new();
        while let Some(d) = f.poll_delivery(dst) {
            got.push(d.message.payload);
        }
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn all_to_one_converges() {
        // Heavy fan-in exercises arbitration fairness and backpressure.
        let mut f = fabric();
        let dst = NodeId(27);
        let mut sent = 0;
        for node in f.torus().node_ids().collect::<Vec<_>>() {
            if node != dst {
                f.inject(Message::new(node, dst, 12, node.0 as u32));
                sent += 1;
            }
        }
        assert!(f.run_until_idle(100_000).unwrap(), "fan-in did not drain");
        let mut got = 0;
        while f.poll_delivery(dst).is_some() {
            got += 1;
        }
        assert_eq!(got, sent);
    }

    #[test]
    fn wraparound_messages_deliver() {
        // Routes that cross the dateline exercise VC class 1.
        let mut f = fabric();
        let t = f.torus().clone();
        let src = t.node_at(&[6, 6]);
        let dst = t.node_at(&[1, 1]); // wraps in both dimensions
        f.inject(Message::new(src, dst, 12, 0u32));
        assert!(f.run_until_idle(1000).unwrap());
        let d = f.poll_delivery(dst).expect("delivered");
        assert_eq!(d.hops, 6);
    }

    #[test]
    fn ring_pressure_with_wraparound_no_deadlock() {
        // Every node on a single ring sends halfway around, saturating the
        // ring's wrap links — the classic torus deadlock scenario that the
        // dateline VCs must break.
        let torus = Torus::new(1, 8);
        let mut f: Fabric<u32> = Fabric::new(
            torus,
            FabricConfig {
                vc_buffer_capacity: 2,
                injection_buffer_capacity: 2,
                ..FabricConfig::default()
            },
        );
        for round in 0..10u32 {
            for node in 0..8usize {
                let dst = NodeId((node + 4) % 8);
                f.inject(Message::new(NodeId(node), dst, 12, round));
            }
        }
        assert!(f.run_until_idle(200_000).unwrap(), "ring deadlocked");
    }

    #[test]
    fn tiny_buffers_still_deliver() {
        let mut f: Fabric<u32> = Fabric::new(
            Torus::new(2, 4),
            FabricConfig {
                vc_buffer_capacity: 1,
                injection_buffer_capacity: 1,
                ..FabricConfig::default()
            },
        );
        for node in 0..16usize {
            f.inject(Message::new(NodeId(node), NodeId(15 - node), 20, 0u32));
        }
        assert!(f.run_until_idle(100_000).unwrap());
    }

    #[test]
    fn flit_conservation() {
        let mut f = fabric();
        let t = f.torus().clone();
        for (i, node) in t.node_ids().enumerate() {
            let dst = NodeId((node.0 * 7 + 3) % t.nodes());
            f.inject(Message::new(node, dst, 4 + (i as u32 % 9), 0u32));
        }
        assert!(f.run_until_idle(100_000).unwrap());
        assert_eq!(f.buffered_flits(), 0);
        let s = f.stats();
        assert_eq!(s.delivered_messages, 64);
        // Every injected flit was delivered (loopbacks inject none).
        assert_eq!(s.delivered_flits, s.injected_flits + loopback_flits(&t));
    }

    fn loopback_flits(t: &Torus) -> u64 {
        // Messages whose computed destination equals the source.
        t.node_ids()
            .enumerate()
            .filter(|(_, node)| (node.0 * 7 + 3) % t.nodes() == node.0)
            .map(|(i, _)| 4 + (i as u64 % 9))
            .sum()
    }

    #[test]
    fn backlog_and_in_flight_reporting() {
        let mut f = fabric();
        for i in 0..5u32 {
            f.inject(Message::new(NodeId(0), NodeId(1), 12, i));
        }
        assert_eq!(f.in_flight(), 5);
        assert_eq!(f.injection_backlog(NodeId(0)), 5);
        assert!(f.run_until_idle(10_000).unwrap());
        assert_eq!(f.in_flight(), 0);
        assert_eq!(f.injection_backlog(NodeId(0)), 0);
    }

    #[test]
    fn stats_reset_keeps_fabric_running() {
        let mut f = fabric();
        f.inject(Message::new(NodeId(0), NodeId(9), 12, 0u32));
        for _ in 0..3 {
            f.step().unwrap();
        }
        f.reset_stats();
        assert_eq!(f.stats().cycles, 0);
        assert!(f.run_until_idle(1000).unwrap());
        assert_eq!(f.stats().delivered_messages, 1);
    }

    #[test]
    fn occupancy_counters_track_buffered_flits() {
        let mut f = fabric();
        for i in 0..10u32 {
            f.inject(Message::new(
                NodeId(i as usize),
                NodeId(40 + i as usize),
                6,
                i,
            ));
        }
        for _ in 0..30 {
            f.step().unwrap();
            let occ = f.router_occupancy();
            assert_eq!(occ.iter().sum::<usize>(), f.buffered_flits());
        }
        assert!(f.run_until_idle(10_000).unwrap());
        assert!(f.router_occupancy().iter().all(|&c| c == 0));
    }

    #[test]
    fn fast_forward_refuses_while_traffic_in_flight() {
        let mut f = fabric();
        f.inject(Message::new(NodeId(0), NodeId(9), 12, 0u32));
        assert_eq!(f.fast_forward(100), 0, "must not skip live traffic");
        assert_eq!(f.cycle(), 0);
    }

    #[test]
    fn fast_forward_advances_idle_clock_and_stats() {
        let mut f = fabric();
        f.inject(Message::new(NodeId(0), NodeId(9), 12, 0u32));
        assert!(f.run_until_idle(1_000).unwrap());
        let drained_at = f.cycle();
        assert_eq!(f.fast_forward(5_000), 5_000);
        assert_eq!(f.cycle(), drained_at + 5_000);
        assert_eq!(f.stats().cycles, f.cycle());
        // The fabric still works normally afterwards.
        f.inject(Message::new(NodeId(0), NodeId(9), 12, 1u32));
        assert!(f.run_until_idle(1_000).unwrap());
        assert_eq!(f.stats().delivered_messages, 2);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut f = fabric();
        for round in 0..50u32 {
            f.inject(Message::new(NodeId(0), NodeId(1), 4, round));
            assert!(f.run_until_idle(1_000).unwrap());
        }
        // Sequential traffic keeps the slab at its high-water mark instead
        // of growing per message.
        assert!(f.slots.len() <= 4, "slab grew to {}", f.slots.len());
        assert_eq!(f.total_injected(), 50);
    }
}

#[cfg(test)]
mod multi_vc_tests {
    use super::*;

    #[test]
    #[should_panic(expected = "split evenly")]
    fn odd_vc_count_rejected() {
        let cfg = FabricConfig {
            link_vcs: 3,
            ..FabricConfig::default()
        };
        let _ = Fabric::<()>::new(Torus::new(2, 4), cfg);
    }

    #[test]
    fn four_vcs_deliver_under_pressure() {
        let mut f: Fabric<u32> = Fabric::new(
            Torus::new(2, 8),
            FabricConfig {
                link_vcs: 4,
                vc_buffer_capacity: 4,
                injection_buffer_capacity: 8,
                ..FabricConfig::default()
            },
        );
        let t = f.torus().clone();
        for round in 0..20u32 {
            for node in t.node_ids().collect::<Vec<_>>() {
                let dst = NodeId((node.0 + 27) % t.nodes());
                if dst != node {
                    f.inject(Message::new(node, dst, 12, round));
                }
            }
        }
        assert!(f.run_until_idle(500_000).unwrap(), "4-VC fabric stalled");
        assert_eq!(f.stats().delivered_messages, 20 * 64);
    }

    #[test]
    fn four_vc_wraparound_ring_no_deadlock() {
        let mut f: Fabric<u32> = Fabric::new(
            Torus::new(1, 8),
            FabricConfig {
                link_vcs: 4,
                vc_buffer_capacity: 2,
                injection_buffer_capacity: 2,
                ..FabricConfig::default()
            },
        );
        for round in 0..10u32 {
            for node in 0..8usize {
                f.inject(Message::new(
                    NodeId(node),
                    NodeId((node + 4) % 8),
                    12,
                    round,
                ));
            }
        }
        assert!(f.run_until_idle(300_000).unwrap(), "4-VC ring deadlocked");
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;

    /// Contiguous near-equal split of `nodes` into `k` ranges.
    fn split(nodes: usize, k: usize) -> Vec<(usize, usize)> {
        let size = nodes / k;
        let rem = nodes % k;
        let mut out = Vec::new();
        let mut base = 0;
        for i in 0..k {
            let owned = size + usize::from(i < rem);
            out.push((base, owned));
            base += owned;
        }
        out
    }

    fn owner(shards: &[Fabric<u32>], node: usize) -> usize {
        shards
            .iter()
            .position(|f| node >= f.shard_base() && node < f.shard_base() + f.shard_owned())
            .expect("node not owned by any shard")
    }

    /// Runs the same injection schedule through a monolithic fabric and a
    /// `k`-shard lockstep ensemble, then asserts bit-exact equivalence of
    /// merged stats, per-node delivery streams, latency breakdowns,
    /// merged fault logs, and message conservation.
    fn compare_sharded(
        torus: Torus,
        config: FabricConfig,
        plan: Option<FaultPlan>,
        k: usize,
        schedule: &[(u64, NodeId, NodeId, u32)],
    ) {
        let mut mono = match plan.clone() {
            Some(p) => Fabric::with_fault_plan(torus.clone(), config, p),
            None => Fabric::new(torus.clone(), config),
        };
        let mut shards: Vec<Fabric<u32>> = split(torus.nodes(), k)
            .into_iter()
            .map(|(base, owned)| match plan.clone() {
                Some(p) => Fabric::with_fault_plan_shard(
                    torus.clone(),
                    config,
                    base,
                    owned,
                    p.restrict(base, owned),
                ),
                None => Fabric::new_shard(torus.clone(), config, base, owned),
            })
            .collect();
        let mut next = 0usize;
        let mut next_id = 0u64;
        let mut payload = 0u32;
        let mut items: Vec<BoundaryItem<u32>> = Vec::new();
        loop {
            while next < schedule.len() && schedule[next].0 == mono.cycle() {
                let (_, src, dst, len) = schedule[next];
                mono.inject(Message::new(src, dst, len, payload));
                let s = owner(&shards, src.0);
                shards[s].inject_with_id(MessageId(next_id), Message::new(src, dst, len, payload));
                next_id += 1;
                payload += 1;
                next += 1;
            }
            if next >= schedule.len()
                && mono.in_flight() == 0
                && shards.iter().all(Fabric::is_quiescent)
            {
                break;
            }
            mono.step().unwrap();
            for f in shards.iter_mut() {
                f.step().unwrap();
            }
            for f in shards.iter_mut() {
                f.take_boundary(&mut items);
            }
            for item in items.drain(..) {
                let s = owner(&shards, item.dst_node());
                shards[s].ingest_boundary(item);
            }
            assert!(mono.cycle() < 500_000, "traffic did not drain");
        }
        assert_eq!(mono.cycle(), shards[0].cycle());
        let merged = FabricStats::merged(shards.iter().map(Fabric::stats));
        assert_eq!(&merged, mono.stats(), "merged shard stats diverged");
        let mut breakdown = LatencyBreakdown::default();
        for f in &shards {
            breakdown.absorb(f.breakdown());
        }
        assert_eq!(&breakdown, mono.breakdown(), "merged breakdown diverged");
        for node in 0..torus.nodes() {
            let s = owner(&shards, node);
            loop {
                let m = mono.poll_delivery(NodeId(node));
                let sh = shards[s].poll_delivery(NodeId(node));
                assert_eq!(m, sh, "delivery stream diverged at node {node}");
                if m.is_none() {
                    break;
                }
            }
        }
        if mono.fault_log().is_some() {
            let merged_log = FaultLog::merge(shards.iter().map(|f| f.fault_log().unwrap()));
            assert_eq!(Some(&merged_log), mono.fault_log(), "fault logs diverged");
        }
        let total: u64 = shards.iter().map(Fabric::total_injected).sum();
        assert_eq!(total, mono.total_injected());
        let s = mono.stats();
        assert_eq!(s.delivered_messages + s.dropped_messages, total);
    }

    /// Scattered many-to-many traffic injected in waves, plus a couple of
    /// loopbacks; lengths vary so heads, bodies, and head-tails all cross
    /// shard boundaries at some point.
    fn scatter_schedule(nodes: usize, rounds: u64) -> Vec<(u64, NodeId, NodeId, u32)> {
        let mut schedule = Vec::new();
        for round in 0..rounds {
            for node in 0..nodes {
                let dst = (node * 13 + 5 + round as usize) % nodes;
                let len = 1 + ((node + round as usize) % 9) as u32;
                schedule.push((round * 7, NodeId(node), NodeId(dst), len));
            }
            schedule.push((
                round * 7,
                NodeId(round as usize % nodes),
                NodeId(round as usize % nodes),
                4,
            ));
        }
        schedule
    }

    #[test]
    fn two_shard_lockstep_matches_monolithic() {
        let torus = Torus::new(2, 8);
        let schedule = scatter_schedule(torus.nodes(), 6);
        compare_sharded(torus, FabricConfig::default(), None, 2, &schedule);
    }

    #[test]
    fn odd_shard_counts_match_monolithic() {
        let torus = Torus::new(2, 8);
        let schedule = scatter_schedule(torus.nodes(), 4);
        for k in [3, 7] {
            compare_sharded(torus.clone(), FabricConfig::default(), None, k, &schedule);
        }
    }

    #[test]
    fn wraparound_ring_two_shards() {
        // Halfway-around traffic on a 1D ring saturates the wrap links,
        // so worms cross both shard boundaries in both directions.
        let torus = Torus::new(1, 8);
        let mut schedule = Vec::new();
        for round in 0..10u64 {
            for node in 0..8usize {
                schedule.push((round * 3, NodeId(node), NodeId((node + 4) % 8), 12));
            }
        }
        let config = FabricConfig {
            vc_buffer_capacity: 2,
            injection_buffer_capacity: 2,
            ..FabricConfig::default()
        };
        compare_sharded(torus, config, None, 2, &schedule);
    }

    #[test]
    fn four_vc_three_d_torus_four_shards() {
        let torus = Torus::new(3, 4);
        let schedule = scatter_schedule(torus.nodes(), 3);
        let config = FabricConfig {
            link_vcs: 4,
            vc_buffer_capacity: 4,
            ..FabricConfig::default()
        };
        compare_sharded(torus, config, None, 4, &schedule);
    }

    /// A wrapping e-cube route can leave a shard and re-enter it at a
    /// different link: on a 5x5 torus cut into three 8-or-9-node ranges,
    /// 8 -> 10 routes 8 -> 9 -> 5 -> 10, crossing shard 0 -> shard 1
    /// twice. A worm long enough to span the whole path streams across
    /// both crossings concurrently, so the tail passing the first must
    /// not tear down the remap entry the second still needs (found by
    /// the machine-level fuzzer; message-id-keyed remap broke here).
    #[test]
    fn worm_reentering_shard_through_second_crossing() {
        let torus = Torus::new(2, 5);
        let mut schedule = vec![(0, NodeId(8), NodeId(10), 24)];
        // Pile on neighbours so freed slab slots get reused, which is
        // what turns a stale remap into a visible wrong-slot ejection.
        for n in 0..torus.nodes() {
            schedule.push((1, NodeId(n), NodeId((n + 7) % torus.nodes()), 16));
        }
        for k in [2, 3, 4] {
            compare_sharded(torus.clone(), FabricConfig::default(), None, k, &schedule);
        }
    }

    #[test]
    fn sharded_fault_rolls_replay_bit_exact() {
        let torus = Torus::new(2, 8);
        let schedule = scatter_schedule(torus.nodes(), 5);
        let plan = FaultPlan::new(77)
            .with_drop_rate(0.08)
            .with_corrupt_rate(0.08)
            .with_stall_rate(0.02, 40);
        for k in [2, 3] {
            compare_sharded(
                torus.clone(),
                FabricConfig::default(),
                Some(plan.clone()),
                k,
                &schedule,
            );
        }
    }

    #[test]
    fn sharded_scheduled_stalls_replay_bit_exact() {
        let torus = Torus::new(2, 8);
        let schedule = scatter_schedule(torus.nodes(), 4);
        let plan = FaultPlan::new(9)
            .stall_router_at(5, 27, 120)
            .stall_router_at(40, 9, 60);
        compare_sharded(torus, FabricConfig::default(), Some(plan), 3, &schedule);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    /// Injects one message per node to a scattered destination.
    fn load(f: &mut Fabric<u32>) {
        let t = f.torus().clone();
        for node in t.node_ids() {
            let dst = NodeId((node.0 * 13 + 5) % t.nodes());
            if dst != node {
                f.inject(Message::new(node, dst, 8, node.0 as u32));
            }
        }
    }

    fn drain(f: &mut Fabric<u32>) -> u64 {
        assert!(f.run_until_idle(200_000).unwrap(), "faulted fabric wedged");
        let mut delivered = 0;
        for node in f.torus().node_ids().collect::<Vec<_>>() {
            while f.poll_delivery(node).is_some() {
                delivered += 1;
            }
        }
        delivered
    }

    #[test]
    fn drops_conserve_messages_and_flow_control() {
        let plan = FaultPlan::new(77).with_drop_rate(0.05);
        let mut f: Fabric<u32> =
            Fabric::with_fault_plan(Torus::new(2, 8), FabricConfig::default(), plan);
        for _ in 0..5 {
            load(&mut f);
        }
        let delivered = drain(&mut f);
        let s = f.stats().clone();
        assert!(s.dropped_messages > 0, "5% drop rate over ~320 messages");
        // Conservation: every injected message either delivered or was
        // logged as dropped; buffers and credits fully drained.
        assert_eq!(delivered + s.dropped_messages, f.total_injected());
        assert_eq!(
            f.fault_log().unwrap().dropped_messages(),
            s.dropped_messages
        );
        assert_eq!(f.buffered_flits(), 0);
        // A second identical run replays the identical fault log.
        let plan2 = FaultPlan::new(77).with_drop_rate(0.05);
        let mut g: Fabric<u32> =
            Fabric::with_fault_plan(Torus::new(2, 8), FabricConfig::default(), plan2);
        for _ in 0..5 {
            load(&mut g);
        }
        drain(&mut g);
        assert_eq!(f.fault_log(), g.fault_log());
    }

    #[test]
    fn corruption_flags_deliveries_via_checksum() {
        let plan = FaultPlan::new(3).with_corrupt_rate(0.2);
        let mut f: Fabric<u32> =
            Fabric::with_fault_plan(Torus::new(2, 8), FabricConfig::default(), plan);
        load(&mut f);
        assert!(f.run_until_idle(100_000).unwrap());
        let mut corrupt = 0;
        for node in f.torus().node_ids().collect::<Vec<_>>() {
            while let Some(d) = f.poll_delivery(node) {
                if d.is_corrupt() {
                    corrupt += 1;
                }
            }
        }
        assert_eq!(corrupt, f.stats().corrupted_messages);
        assert!(corrupt > 0, "20% corruption rate over ~64 messages");
    }

    #[test]
    fn transient_router_stall_delays_but_delivers() {
        let plan = FaultPlan::new(1).stall_router_at(2, 9, 400);
        let mut f: Fabric<u32> =
            Fabric::with_fault_plan(Torus::new(2, 8), FabricConfig::default(), plan);
        // Route through the stalled node: 0 -> 18 crosses node 9's column.
        f.inject(Message::new(NodeId(8), NodeId(10), 8, 0u32));
        assert!(f.run_until_idle(10_000).unwrap());
        let d = f.poll_delivery(NodeId(10)).expect("delivered after stall");
        assert!(
            d.total_latency() > 400,
            "stall should dominate latency, got {}",
            d.total_latency()
        );
        assert_eq!(f.fault_log().unwrap().len(), 1);
    }

    #[test]
    fn killed_link_wedges_traffic_without_panicking() {
        let plan = FaultPlan::new(2).kill_link_at(1, 0, 0, Direction::Plus);
        let mut f: Fabric<u32> =
            Fabric::with_fault_plan(Torus::new(2, 8), FabricConfig::default(), plan);
        // E-cube routes 0 -> 2 through node 0's +X link: it can never
        // arrive, but stepping must neither panic nor error.
        f.inject(Message::new(NodeId(0), NodeId(2), 8, 0u32));
        assert!(
            !f.run_until_idle(5_000).unwrap(),
            "message cannot pass a dead link"
        );
        assert_eq!(f.in_flight(), 1);
        let before = f.activity();
        for _ in 0..100 {
            f.step().unwrap();
        }
        assert_eq!(f.activity(), before, "wedged fabric shows no activity");
        assert!(f.fault_plan().unwrap().has_permanent_faults());
    }
}
