//! k-ary n-dimensional torus topology: coordinates, distances, and
//! neighbor relations.
//!
//! The simulated interconnect matches the paper's Section 3 architecture:
//! a torus with separate unidirectional channels in both directions of
//! every dimension. This module is purely geometric; routing policy lives
//! in [`crate::routing`].

use std::fmt;

/// Identifies a node (and its router) in the fabric. Node ids are the
/// row-major linearization of torus coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Direction of travel along a torus dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increasing coordinate (with wraparound `k-1 -> 0`).
    Plus,
    /// Decreasing coordinate (with wraparound `0 -> k-1`).
    Minus,
}

impl Direction {
    /// Both directions, in canonical order.
    pub const ALL: [Direction; 2] = [Direction::Plus, Direction::Minus];

    /// The canonical index of the direction (Plus = 0, Minus = 1).
    pub fn index(self) -> usize {
        match self {
            Direction::Plus => 0,
            Direction::Minus => 1,
        }
    }
}

/// A k-ary n-dimensional torus.
///
/// # Examples
///
/// ```
/// use commloc_net::{NodeId, Torus};
///
/// let torus = Torus::new(2, 8); // the paper's 8x8 machine
/// assert_eq!(torus.nodes(), 64);
/// // Opposite corners of an 8x8 torus are 4+4 hops apart.
/// assert_eq!(torus.distance(NodeId(0), torus.node_at(&[4, 4])), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Torus {
    radix: usize,
    dims: u32,
}

impl Torus {
    /// Creates a torus with `dims` dimensions of radix `radix`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero or `radix` is zero (a torus needs at least
    /// one node per ring).
    pub fn new(dims: u32, radix: usize) -> Self {
        assert!(dims > 0, "torus must have at least one dimension");
        assert!(radix > 0, "torus radix must be at least 1");
        Self { radix, dims }
    }

    /// The number of dimensions `n`.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// The per-dimension radix `k`.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Total number of nodes `k^n`.
    pub fn nodes(&self) -> usize {
        self.radix.pow(self.dims)
    }

    /// The coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coordinates(&self, node: NodeId) -> Vec<usize> {
        assert!(node.0 < self.nodes(), "node {node} out of range");
        let mut rest = node.0;
        let mut coords = vec![0; self.dims as usize];
        for c in coords.iter_mut() {
            *c = rest % self.radix;
            rest /= self.radix;
        }
        coords
    }

    /// The node at the given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate count does not match the dimension count
    /// or any coordinate is out of range.
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        assert_eq!(
            coords.len(),
            self.dims as usize,
            "coordinate count must equal dimension count"
        );
        let mut id = 0;
        for (i, &c) in coords.iter().enumerate().rev() {
            assert!(c < self.radix, "coordinate {c} out of range in dim {i}");
            id = id * self.radix + c;
        }
        NodeId(id)
    }

    /// The coordinate of `node` in dimension `dim` only (cheaper than
    /// materializing all coordinates).
    pub fn coordinate(&self, node: NodeId, dim: u32) -> usize {
        (node.0 / self.radix.pow(dim)) % self.radix
    }

    /// The neighbor of `node` one hop away in `dim`/`direction`.
    pub fn neighbor(&self, node: NodeId, dim: u32, direction: Direction) -> NodeId {
        let mut coords = self.coordinates(node);
        let c = coords[dim as usize];
        coords[dim as usize] = match direction {
            Direction::Plus => (c + 1) % self.radix,
            Direction::Minus => (c + self.radix - 1) % self.radix,
        };
        self.node_at(&coords)
    }

    /// Minimal hop distance between `a` and `b` in a single dimension's
    /// ring, given their coordinates in that dimension.
    pub fn ring_distance(&self, from: usize, to: usize) -> usize {
        let fwd = (to + self.radix - from) % self.radix;
        fwd.min(self.radix - fwd)
    }

    /// The minimal-direction hop count and direction of travel in one
    /// dimension. Ties (exactly half way around an even ring) resolve to
    /// [`Direction::Plus`], matching the deterministic e-cube router.
    pub fn ring_step(&self, from: usize, to: usize) -> (usize, Direction) {
        let fwd = (to + self.radix - from) % self.radix;
        let bwd = self.radix - fwd;
        if fwd == 0 {
            (0, Direction::Plus)
        } else if fwd <= bwd {
            (fwd, Direction::Plus)
        } else {
            (bwd, Direction::Minus)
        }
    }

    /// Minimal torus (hop) distance between two nodes — the number of
    /// network hops an e-cube-routed message between them traverses.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        (0..self.dims)
            .map(|d| self.ring_distance(self.coordinate(a, d), self.coordinate(b, d)))
            .sum()
    }

    /// Average distance between all ordered pairs of *distinct* nodes —
    /// the exact finite-machine counterpart of the paper's Eq. 17.
    pub fn mean_pairwise_distance(&self) -> f64 {
        let n = self.nodes();
        if n <= 1 {
            return 0.0;
        }
        // Sum of distances from one node to all others; by symmetry every
        // source sees the same multiset of distances.
        let origin = NodeId(0);
        let total: usize = (0..n)
            .filter(|&i| i != origin.0)
            .map(|i| self.distance(origin, NodeId(i)))
            .sum();
        total as f64 / (n - 1) as f64
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }
}

/// One routing decision at a router, in port form: which output port and
/// which virtual-channel *class* the head flit requests next.
///
/// This is the topology-neutral counterpart of
/// [`crate::routing::RouteStep`]: a port index instead of a
/// `(dim, direction)` pair, so routers need not know what the port
/// physically means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortStep {
    /// Leave on output port `port` using virtual-channel class `vc`.
    Forward {
        /// Output port index, `< Topology::ports()`.
        port: usize,
        /// Virtual-channel class for the hop (`< DATELINE_VCS`).
        vc: crate::routing::VcIndex,
    },
    /// The message has arrived; eject to the local node.
    Eject,
}

/// An interconnect topology the fabric can instantiate.
///
/// Every variant answers the same five questions: how many routers exist
/// (`nodes`), which of them host compute (`compute_nodes` — always ids
/// `0..compute_nodes()`), how routers are wired (`link_dest`,
/// `link_in_port`, `upstream`), how a message routes deterministically
/// (`route_hop`), and how far apart nodes are (`distance`,
/// `distance_distribution`).
///
/// This is a concrete enum rather than a trait object so that the fabric
/// stays non-generic and the topology stays `Clone + PartialEq + Hash`
/// for scenario cache keys (see DESIGN.md §4.13 for the trade-off).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Topology {
    /// k-ary n-cube torus (the paper's machine).
    Cube(Torus),
    /// Non-wrapping 2D mesh.
    Mesh(Mesh2D),
    /// Complete arity-ary fat tree; compute lives on the leaves.
    FatTree(FatTree),
    /// Dragonfly with fully connected groups and one global channel per
    /// group pair.
    Dragonfly(Dragonfly),
}

impl From<Torus> for Topology {
    fn from(torus: Torus) -> Self {
        Topology::Cube(torus)
    }
}

/// A non-wrapping `x` by `y` mesh. Node ids are row-major with the x
/// coordinate fastest, matching the torus linearization; ports follow the
/// torus convention (`2*dim + direction.index()`), with edge ports simply
/// absent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mesh2D {
    x: usize,
    y: usize,
}

impl Mesh2D {
    /// Creates an `x` by `y` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either side is zero.
    pub fn new(x: usize, y: usize) -> Self {
        assert!(x > 0 && y > 0, "mesh sides must be at least 1");
        Self { x, y }
    }

    /// The mesh's `(x, y)` side lengths.
    pub fn shape(&self) -> (usize, usize) {
        (self.x, self.y)
    }

    fn coords(&self, node: NodeId) -> (usize, usize) {
        (node.0 % self.x, node.0 / self.x)
    }

    fn at(&self, cx: usize, cy: usize) -> NodeId {
        NodeId(cy * self.x + cx)
    }
}

/// A complete `arity`-ary tree with `levels` switch levels above the
/// leaves. Leaves (the compute nodes) are ids `0..arity^levels`; switches
/// are numbered level by level above them, root last. Every node has
/// `arity + 1` ports: ports `0..arity` lead down to children (absent on
/// leaves), port `arity` leads up to the parent (absent on the root).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FatTree {
    arity: usize,
    levels: u32,
}

impl FatTree {
    /// Creates a fat tree with the given arity and switch-level count.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` or `levels == 0`.
    pub fn new(arity: usize, levels: u32) -> Self {
        assert!(arity >= 2, "fat tree arity must be at least 2");
        assert!(levels > 0, "fat tree needs at least one switch level");
        Self { arity, levels }
    }

    /// Number of leaves (compute nodes).
    pub fn leaves(&self) -> usize {
        self.arity.pow(self.levels)
    }

    /// Children per switch.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Switch levels above the leaves.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Id offset of the first switch at `level` (level 0 = leaves).
    fn level_offset(&self, level: u32) -> usize {
        let mut offset = 0;
        for l in 0..level {
            offset += self.arity.pow(self.levels - l);
        }
        offset
    }

    /// Splits a node id into `(level, index within level)`.
    fn locate(&self, node: NodeId) -> (u32, usize) {
        let mut rest = node.0;
        for level in 0..=self.levels {
            let count = self.arity.pow(self.levels - level);
            if rest < count {
                return (level, rest);
            }
            rest -= count;
        }
        panic!("fat-tree node {node} out of range");
    }

    fn id_at(&self, level: u32, index: usize) -> NodeId {
        NodeId(self.level_offset(level) + index)
    }

    fn total_nodes(&self) -> usize {
        self.level_offset(self.levels) + 1
    }
}

/// A dragonfly with `routers` routers per group, each hosting compute,
/// `globals` global channels per router, and `routers * globals + 1`
/// groups so that every ordered group pair is joined by exactly one
/// global channel. Ports `0..routers-1` are the all-to-all local links;
/// ports `routers-1..routers-1+globals` are the global links.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dragonfly {
    routers: usize,
    globals: usize,
}

impl Dragonfly {
    /// Creates a dragonfly with `routers` routers per group and `globals`
    /// global channels per router.
    ///
    /// # Panics
    ///
    /// Panics if `routers < 2` or `globals == 0`.
    pub fn new(routers: usize, globals: usize) -> Self {
        assert!(routers >= 2, "dragonfly needs at least 2 routers per group");
        assert!(globals > 0, "dragonfly needs at least one global channel");
        Self { routers, globals }
    }

    /// Number of groups (`a*h + 1`).
    pub fn groups(&self) -> usize {
        self.routers * self.globals + 1
    }

    /// Routers per group (`a`).
    pub fn routers_per_group(&self) -> usize {
        self.routers
    }

    /// Global channels per router (`h`).
    pub fn globals_per_router(&self) -> usize {
        self.globals
    }

    fn split(&self, node: NodeId) -> (usize, usize) {
        (node.0 / self.routers, node.0 % self.routers)
    }

    /// The out-port on router `from` for the local hop to router `to` of
    /// the same group.
    fn local_port(&self, from: usize, to: usize) -> usize {
        debug_assert_ne!(from, to);
        (to + self.routers - from - 1) % self.routers
    }

    /// The global channel index (`0..a*h`) that group-offset `delta`
    /// (`1..groups`) rides on, plus the owning router and its global-port
    /// index within the source group.
    fn channel_for_offset(&self, delta: usize) -> (usize, usize, usize) {
        debug_assert!(delta >= 1 && delta < self.groups());
        let c = delta - 1;
        (c, c / self.globals, c % self.globals)
    }

    /// The far end of channel `c` leaving any group: the reverse-offset
    /// channel index at the destination group.
    fn far_channel(&self, c: usize) -> usize {
        self.groups() - 2 - c
    }
}

impl Topology {
    /// A `dims`-dimensional radix-`radix` torus.
    pub fn cube(dims: u32, radix: usize) -> Self {
        Topology::Cube(Torus::new(dims, radix))
    }

    /// An `x` by `y` non-wrapping mesh.
    pub fn mesh(x: usize, y: usize) -> Self {
        Topology::Mesh(Mesh2D::new(x, y))
    }

    /// An `arity`-ary fat tree with `levels` switch levels.
    pub fn fat_tree(arity: usize, levels: u32) -> Self {
        Topology::FatTree(FatTree::new(arity, levels))
    }

    /// A dragonfly with `routers` routers per group and `globals` global
    /// channels per router.
    pub fn dragonfly(routers: usize, globals: usize) -> Self {
        Topology::Dragonfly(Dragonfly::new(routers, globals))
    }

    /// Short topology family name (`cube`, `mesh`, `fattree`,
    /// `dragonfly`).
    pub fn family(&self) -> &'static str {
        match self {
            Topology::Cube(_) => "cube",
            Topology::Mesh(_) => "mesh",
            Topology::FatTree(_) => "fattree",
            Topology::Dragonfly(_) => "dragonfly",
        }
    }

    /// Canonical textual form, stable across releases — used verbatim in
    /// scenario cache keys.
    pub fn canonical(&self) -> String {
        match self {
            Topology::Cube(t) => format!("cube:{}x{}", t.dims(), t.radix()),
            Topology::Mesh(m) => format!("mesh:{}x{}", m.x, m.y),
            Topology::FatTree(f) => format!("fattree:a{}l{}", f.arity, f.levels),
            Topology::Dragonfly(d) => format!("dragonfly:a{}h{}", d.routers, d.globals),
        }
    }

    /// Total number of routers in the fabric.
    pub fn nodes(&self) -> usize {
        match self {
            Topology::Cube(t) => t.nodes(),
            Topology::Mesh(m) => m.x * m.y,
            Topology::FatTree(f) => f.total_nodes(),
            Topology::Dragonfly(d) => d.groups() * d.routers,
        }
    }

    /// Number of nodes hosting compute. Compute nodes are always fabric
    /// ids `0..compute_nodes()`; fat-tree switches come after the leaves.
    pub fn compute_nodes(&self) -> usize {
        match self {
            Topology::FatTree(f) => f.leaves(),
            other => other.nodes(),
        }
    }

    /// Number of inter-router ports per node (uniform across nodes; not
    /// every port is populated on every node — see [`Topology::link_dest`]).
    pub fn ports(&self) -> usize {
        match self {
            Topology::Cube(t) => 2 * t.dims() as usize,
            Topology::Mesh(_) => 4,
            Topology::FatTree(f) => f.arity + 1,
            Topology::Dragonfly(d) => d.routers - 1 + d.globals,
        }
    }

    /// The downstream node of `node`'s output port `port`, or `None` if
    /// the port is unpopulated (mesh edge, leaf child port, root parent
    /// port).
    pub fn link_dest(&self, node: NodeId, port: usize) -> Option<NodeId> {
        match self {
            Topology::Cube(t) => {
                let (dim, dir) = crate::fabric::port_to_link(port);
                Some(t.neighbor(node, dim, dir))
            }
            Topology::Mesh(m) => {
                let (cx, cy) = m.coords(node);
                match port {
                    0 => (cx + 1 < m.x).then(|| m.at(cx + 1, cy)),
                    1 => (cx > 0).then(|| m.at(cx - 1, cy)),
                    2 => (cy + 1 < m.y).then(|| m.at(cx, cy + 1)),
                    3 => (cy > 0).then(|| m.at(cx, cy - 1)),
                    _ => panic!("mesh port {port} out of range"),
                }
            }
            Topology::FatTree(f) => {
                let (level, index) = f.locate(node);
                if port == f.arity {
                    (level < f.levels).then(|| f.id_at(level + 1, index / f.arity))
                } else if port < f.arity {
                    (level > 0).then(|| f.id_at(level - 1, index * f.arity + port))
                } else {
                    panic!("fat-tree port {port} out of range");
                }
            }
            Topology::Dragonfly(d) => {
                let (group, router) = d.split(node);
                if port < d.routers - 1 {
                    let to = (router + port + 1) % d.routers;
                    Some(NodeId(group * d.routers + to))
                } else if port < d.routers - 1 + d.globals {
                    let c = router * d.globals + (port - (d.routers - 1));
                    let far_group = (group + c + 1) % d.groups();
                    let far_router = d.far_channel(c) / d.globals;
                    Some(NodeId(far_group * d.routers + far_router))
                } else {
                    panic!("dragonfly port {port} out of range");
                }
            }
        }
    }

    /// The input-port index at the downstream node for `node`'s output
    /// port `port`. `None` exactly when [`Topology::link_dest`] is `None`.
    ///
    /// For cube and mesh the receiver's in-port index equals the sender's
    /// out-port index (the historical torus convention, preserved so that
    /// arbitration order — and therefore every golden — is unchanged).
    pub fn link_in_port(&self, node: NodeId, port: usize) -> Option<usize> {
        match self {
            Topology::Cube(_) => Some(port),
            Topology::Mesh(_) => self.link_dest(node, port).map(|_| port),
            Topology::FatTree(f) => {
                let (level, index) = f.locate(node);
                if port == f.arity {
                    (level < f.levels).then(|| index % f.arity)
                } else {
                    (level > 0 && port < f.arity).then_some(f.arity)
                }
            }
            Topology::Dragonfly(d) => {
                let (_, router) = d.split(node);
                if port < d.routers - 1 {
                    let to = (router + port + 1) % d.routers;
                    Some(d.local_port(to, router))
                } else {
                    let c = router * d.globals + (port - (d.routers - 1));
                    Some(d.routers - 1 + d.far_channel(c) % d.globals)
                }
            }
        }
    }

    /// The upstream node feeding `node`'s input port `in_port`, together
    /// with the out-port index that link occupies at the upstream node.
    /// `None` if no link feeds that input port.
    pub fn upstream(&self, node: NodeId, in_port: usize) -> Option<(NodeId, usize)> {
        match self {
            Topology::Cube(t) => {
                let (dim, dir) = crate::fabric::port_to_link(in_port ^ 1);
                Some((t.neighbor(node, dim, dir), in_port))
            }
            Topology::Mesh(_) => self.link_dest(node, in_port ^ 1).map(|up| (up, in_port)),
            Topology::FatTree(f) => {
                let (level, index) = f.locate(node);
                if in_port == f.arity {
                    (level < f.levels)
                        .then(|| (f.id_at(level + 1, index / f.arity), index % f.arity))
                } else if in_port < f.arity {
                    (level > 0).then(|| (f.id_at(level - 1, index * f.arity + in_port), f.arity))
                } else {
                    None
                }
            }
            Topology::Dragonfly(d) => {
                let (group, router) = d.split(node);
                if in_port < d.routers - 1 {
                    let from = (router + in_port + 1) % d.routers;
                    Some((NodeId(group * d.routers + from), d.local_port(from, router)))
                } else if in_port < d.routers - 1 + d.globals {
                    let c = router * d.globals + (in_port - (d.routers - 1));
                    let far = self.link_dest(node, in_port).unwrap();
                    Some((far, d.routers - 1 + d.far_channel(c) % d.globals))
                } else {
                    None
                }
            }
        }
    }

    /// The deterministic routing decision for a message from `src` to
    /// `dst` currently at `current`, in port form. Routing is minimal and
    /// deadlock-free on every topology with two virtual-channel classes:
    /// dateline classes on the cube, class 0 only on the mesh, up/down
    /// classes on the fat tree, and pre-global/post-global classes on the
    /// dragonfly.
    pub fn route_hop(&self, src: NodeId, dst: NodeId, current: NodeId) -> PortStep {
        match self {
            Topology::Cube(t) => match crate::routing::route_step(t, src, dst, current) {
                crate::routing::RouteStep::Eject => PortStep::Eject,
                crate::routing::RouteStep::Forward { dim, direction, vc } => PortStep::Forward {
                    port: crate::fabric::link_to_port(dim, direction),
                    vc,
                },
            },
            Topology::Mesh(m) => {
                let (cx, cy) = m.coords(current);
                let (dx, dy) = m.coords(dst);
                if cx != dx {
                    let port = if dx > cx { 0 } else { 1 };
                    PortStep::Forward { port, vc: 0 }
                } else if cy != dy {
                    let port = if dy > cy { 2 } else { 3 };
                    PortStep::Forward { port, vc: 0 }
                } else {
                    PortStep::Eject
                }
            }
            Topology::FatTree(f) => {
                if current == dst {
                    return PortStep::Eject;
                }
                let (level, index) = f.locate(current);
                if level > 0 {
                    let span = f.arity.pow(level);
                    if dst.0 / span == index {
                        // Descend toward the covering child; class 1.
                        let child = dst.0 / f.arity.pow(level - 1) - index * f.arity;
                        return PortStep::Forward { port: child, vc: 1 };
                    }
                }
                PortStep::Forward {
                    port: f.arity,
                    vc: 0,
                }
            }
            Topology::Dragonfly(d) => {
                if current == dst {
                    return PortStep::Eject;
                }
                let (group, router) = d.split(current);
                let (dst_group, dst_router) = d.split(dst);
                if group == dst_group {
                    // Terminal local hop (or same-group traffic): class 1.
                    return PortStep::Forward {
                        port: d.local_port(router, dst_router),
                        vc: 1,
                    };
                }
                let delta = (dst_group + d.groups() - group) % d.groups();
                let (_, owner, j) = d.channel_for_offset(delta);
                if router == owner {
                    PortStep::Forward {
                        port: d.routers - 1 + j,
                        vc: 0,
                    }
                } else {
                    PortStep::Forward {
                        port: d.local_port(router, owner),
                        vc: 0,
                    }
                }
            }
        }
    }

    /// Hop count of the deterministic route from `a` to `b`.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        match self {
            Topology::Cube(t) => t.distance(a, b),
            Topology::Mesh(m) => {
                let (ax, ay) = m.coords(a);
                let (bx, by) = m.coords(b);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            Topology::FatTree(f) => {
                let (la, mut ia) = f.locate(a);
                let (lb, mut ib) = f.locate(b);
                // Lift both endpoints to a common level, then to the LCA.
                let level = la.max(lb);
                for _ in la..level {
                    ia /= f.arity;
                }
                for _ in lb..level {
                    ib /= f.arity;
                }
                let mut up_a = (level - la) as usize;
                let mut up_b = (level - lb) as usize;
                while ia != ib {
                    ia /= f.arity;
                    ib /= f.arity;
                    up_a += 1;
                    up_b += 1;
                }
                up_a + up_b
            }
            Topology::Dragonfly(d) => {
                if a == b {
                    return 0;
                }
                let (ga, ra) = d.split(a);
                let (gb, rb) = d.split(b);
                if ga == gb {
                    return 1;
                }
                let delta = (gb + d.groups() - ga) % d.groups();
                let (c, owner, _) = d.channel_for_offset(delta);
                let far_router = d.far_channel(c) / d.globals;
                1 + usize::from(ra != owner) + usize::from(far_router != rb)
            }
        }
    }

    /// Mean distance over all ordered pairs of *distinct* compute nodes —
    /// the random-mapping expected distance for this topology (the
    /// finite-machine counterpart of the paper's Eq. 17).
    pub fn mean_pairwise_distance(&self) -> f64 {
        let dist = self.distance_distribution();
        dist.iter().enumerate().map(|(h, p)| h as f64 * p).sum()
    }

    /// Probability distribution of hop distances over ordered pairs of
    /// distinct compute nodes: entry `h` is the fraction of pairs at
    /// distance `h`. Sums to 1.0 (empty machine: empty vector).
    pub fn distance_distribution(&self) -> Vec<f64> {
        let n = self.compute_nodes();
        if n <= 1 {
            return Vec::new();
        }
        let mut counts: Vec<usize> = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let d = self.distance(NodeId(a), NodeId(b));
                if counts.len() <= d {
                    counts.resize(d + 1, 0);
                }
                counts[d] += 1;
            }
        }
        let total = (n * (n - 1)) as f64;
        counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// The compute nodes a compute node's application thread communicates
    /// with under the synthetic neighbour workload: torus/mesh grid
    /// neighbours, and index-space neighbours (`±1`, `±row`) for the
    /// hierarchical topologies, chosen so that an identity mapping is the
    /// local mapping.
    pub fn app_neighbors(&self, node: usize) -> Vec<usize> {
        match self {
            Topology::Cube(t) => {
                let id = NodeId(node);
                let mut out = Vec::new();
                for dim in 0..t.dims() {
                    for dir in Direction::ALL {
                        out.push(t.neighbor(id, dim, dir).0);
                    }
                }
                out
            }
            Topology::Mesh(_) => {
                let mut out = Vec::new();
                for port in 0..4 {
                    if let Some(n) = self.link_dest(NodeId(node), port) {
                        out.push(n.0);
                    }
                }
                out
            }
            Topology::FatTree(f) => {
                let n = f.leaves();
                index_space_neighbors(node, n, f.arity)
            }
            Topology::Dragonfly(d) => {
                // Ring within the group (every local hop is one link) plus
                // the same-router-index node of each adjacent group, so
                // identity-mapped traffic is mostly intra-group.
                let a = d.routers;
                let n = self.compute_nodes();
                let (g, r) = (node / a, node % a);
                let mut out = Vec::new();
                for r2 in [(r + 1) % a, (r + a - 1) % a] {
                    let peer = g * a + r2;
                    if peer != node && !out.contains(&peer) {
                        out.push(peer);
                    }
                }
                for step in [a, n - a] {
                    let peer = (node + step) % n;
                    if peer != node && !out.contains(&peer) {
                        out.push(peer);
                    }
                }
                out
            }
        }
    }

    /// Mean route distance over every application-graph edge under the
    /// identity mapping — the "ideal" locality this topology's workload
    /// can achieve, the per-topology counterpart of the model's unit
    /// ideal distance on the torus.
    pub fn mean_app_distance(&self) -> f64 {
        let n = self.compute_nodes();
        let mut total = 0usize;
        let mut edges = 0usize;
        for node in 0..n {
            for peer in self.app_neighbors(node) {
                total += self.distance(NodeId(node), NodeId(peer));
                edges += 1;
            }
        }
        if edges == 0 {
            0.0
        } else {
            total as f64 / edges as f64
        }
    }

    /// The underlying torus for [`Topology::Cube`].
    ///
    /// # Panics
    ///
    /// Panics on any other variant — callers needing cube-specific
    /// geometry must gate on [`Topology::family`] first.
    pub fn as_torus(&self) -> &Torus {
        match self {
            Topology::Cube(t) => t,
            other => panic!(
                "operation requires a cube topology, got {}",
                other.canonical()
            ),
        }
    }

    /// Total *directed* inter-router channels in the fabric, divided by
    /// the number of compute nodes — the `C` of the flux-balance channel
    /// utilization `rho = r * B * d / C` that generalizes the paper's
    /// Eq. 10 (a torus has `C = 2n` and recovers it exactly).
    pub fn channels_per_compute_node(&self) -> f64 {
        let mut channels = 0usize;
        for node in 0..self.nodes() {
            for port in 0..self.ports() {
                if self.link_dest(NodeId(node), port).is_some() {
                    channels += 1;
                }
            }
        }
        channels as f64 / self.compute_nodes() as f64
    }

    /// Parses a `--topology` argument: `cube`, `mesh`,
    /// `fattree[:ARITY,LEVELS]`, or `dragonfly[:ROUTERS,GLOBALS]`.
    /// `cube` and `mesh` take their shape from `dims`/`radix` (mesh
    /// requires `dims == 2` and is `radix` by `radix`).
    pub fn parse(spec: &str, dims: u32, radix: usize) -> Result<Topology, String> {
        let (family, params) = match spec.split_once(':') {
            Some((f, p)) => (f, Some(p)),
            None => (spec, None),
        };
        let two = |p: Option<&str>, da: usize, db: usize| -> Result<(usize, usize), String> {
            match p {
                None => Ok((da, db)),
                Some(body) => {
                    let (a, b) = body.split_once(',').ok_or_else(|| {
                        format!("expected two comma-separated values in '{body}'")
                    })?;
                    let a = a
                        .parse::<usize>()
                        .map_err(|_| format!("invalid number '{a}'"))?;
                    let b = b
                        .parse::<usize>()
                        .map_err(|_| format!("invalid number '{b}'"))?;
                    Ok((a, b))
                }
            }
        };
        match family {
            "cube" | "torus" => {
                if params.is_some() {
                    return Err("cube takes its shape from --dims/--radix".into());
                }
                Ok(Topology::cube(dims, radix))
            }
            "mesh" => {
                if params.is_some() {
                    return Err("mesh takes its shape from --radix (radix x radix)".into());
                }
                if dims != 2 {
                    return Err(format!("mesh topology requires dims=2, got {dims}"));
                }
                Ok(Topology::mesh(radix, radix))
            }
            "fattree" => {
                let (arity, levels) = two(params, 4, 3)?;
                if arity < 2 || levels == 0 {
                    return Err("fattree needs arity >= 2 and levels >= 1".into());
                }
                Ok(Topology::fat_tree(arity, levels as u32))
            }
            "dragonfly" => {
                let (routers, globals) = two(params, 4, 4)?;
                if routers < 2 || globals == 0 {
                    return Err("dragonfly needs routers >= 2 and globals >= 1".into());
                }
                Ok(Topology::dragonfly(routers, globals))
            }
            other => Err(format!(
                "unknown topology '{other}' (expected cube, mesh, fattree, dragonfly)"
            )),
        }
    }
}

/// `±1` and `±row` neighbours in compute-node index space, with
/// wraparound — the hierarchical topologies' analogue of the torus
/// communication graph.
fn index_space_neighbors(node: usize, n: usize, row: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for step in [1, n - 1, row % n, n - row % n] {
        let peer = (node + step) % n;
        if peer != node && !out.contains(&peer) {
            out.push(peer);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_panics() {
        Torus::new(0, 8);
    }

    #[test]
    fn coordinates_round_trip() {
        let t = Torus::new(3, 5);
        for id in t.node_ids() {
            let coords = t.coordinates(id);
            assert_eq!(t.node_at(&coords), id);
            for (d, &c) in coords.iter().enumerate() {
                assert_eq!(t.coordinate(id, d as u32), c);
            }
        }
    }

    #[test]
    fn neighbor_wraps_around() {
        let t = Torus::new(2, 8);
        let corner = t.node_at(&[7, 0]);
        assert_eq!(t.neighbor(corner, 0, Direction::Plus), t.node_at(&[0, 0]));
        assert_eq!(t.neighbor(corner, 1, Direction::Minus), t.node_at(&[7, 7]));
    }

    #[test]
    fn neighbor_inverse() {
        let t = Torus::new(2, 4);
        for id in t.node_ids() {
            for dim in 0..2 {
                let p = t.neighbor(id, dim, Direction::Plus);
                assert_eq!(t.neighbor(p, dim, Direction::Minus), id);
            }
        }
    }

    #[test]
    fn ring_distance_symmetric_and_bounded() {
        let t = Torus::new(1, 8);
        for a in 0..8 {
            for b in 0..8 {
                let d = t.ring_distance(a, b);
                assert_eq!(d, t.ring_distance(b, a));
                assert!(d <= 4);
            }
        }
        assert_eq!(t.ring_distance(0, 7), 1);
        assert_eq!(t.ring_distance(0, 4), 4);
    }

    #[test]
    fn ring_step_prefers_plus_on_tie() {
        let t = Torus::new(1, 8);
        assert_eq!(t.ring_step(0, 4), (4, Direction::Plus));
        assert_eq!(t.ring_step(0, 5), (3, Direction::Minus));
        assert_eq!(t.ring_step(0, 3), (3, Direction::Plus));
        assert_eq!(t.ring_step(6, 6), (0, Direction::Plus));
    }

    #[test]
    fn distance_matches_per_dimension_sum() {
        let t = Torus::new(2, 8);
        let a = t.node_at(&[1, 2]);
        let b = t.node_at(&[7, 6]);
        // dim 0: 1 -> 7 is 2 hops (backwards); dim 1: 2 -> 6 is 4 hops.
        assert_eq!(t.distance(a, b), 6);
        assert_eq!(t.distance(a, a), 0);
        assert_eq!(t.distance(a, b), t.distance(b, a));
    }

    #[test]
    fn mean_pairwise_distance_matches_eq17_closely() {
        // Eq. 17 for k = 8, n = 2 gives 1024/252 = 4.063...; the exact
        // enumeration over distinct pairs gives the same value (Eq. 17 is
        // exact for even k).
        let t = Torus::new(2, 8);
        let exact = t.mean_pairwise_distance();
        let eq17 = 2.0 * 8f64.powi(3) / (4.0 * (64.0 - 1.0));
        assert!((exact - eq17).abs() < 1e-12, "exact={exact} eq17={eq17}");
    }

    #[test]
    fn mean_pairwise_distance_single_node() {
        assert_eq!(Torus::new(2, 1).mean_pairwise_distance(), 0.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let t = Torus::new(2, 5);
        for a in t.node_ids().step_by(3) {
            for b in t.node_ids().step_by(4) {
                for c in t.node_ids().step_by(5) {
                    assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
                }
            }
        }
    }

    /// Small instances of every topology family, for property tests.
    fn all_small() -> Vec<Topology> {
        vec![
            Topology::cube(2, 4),
            Topology::cube(1, 6),
            Topology::mesh(4, 4),
            Topology::mesh(5, 3),
            Topology::fat_tree(2, 3),
            Topology::fat_tree(3, 2),
            Topology::dragonfly(2, 1),
            Topology::dragonfly(3, 2),
        ]
    }

    /// Walks the deterministic route from `src` to `dst`, validating
    /// every hop against the link tables, and returns the sequence of
    /// `(node, port, vc)` channels used.
    fn walk_route(t: &Topology, src: NodeId, dst: NodeId) -> Vec<(usize, usize, usize)> {
        let mut current = src;
        let mut hops = Vec::new();
        loop {
            match t.route_hop(src, dst, current) {
                PortStep::Eject => {
                    assert_eq!(current, dst, "{}: route ejected early", t.canonical());
                    return hops;
                }
                PortStep::Forward { port, vc } => {
                    assert!(port < t.ports(), "{}: port out of range", t.canonical());
                    assert!(vc < crate::routing::DATELINE_VCS);
                    let down = t.link_dest(current, port).unwrap_or_else(|| {
                        panic!(
                            "{}: route {src}->{dst} used absent link {current} port {port}",
                            t.canonical()
                        )
                    });
                    hops.push((current.0, port, vc));
                    assert!(hops.len() <= 4 * t.nodes(), "route loops");
                    current = down;
                }
            }
        }
    }

    #[test]
    fn routes_are_valid_and_match_distance() {
        for t in all_small() {
            for a in 0..t.compute_nodes() {
                for b in 0..t.compute_nodes() {
                    let hops = walk_route(&t, NodeId(a), NodeId(b));
                    assert_eq!(
                        hops.len(),
                        t.distance(NodeId(a), NodeId(b)),
                        "{}: route length vs distance for {a}->{b}",
                        t.canonical()
                    );
                }
            }
        }
    }

    #[test]
    fn link_tables_are_mutually_consistent() {
        for t in all_small() {
            let mut in_ports_seen = std::collections::BTreeMap::new();
            for node in 0..t.nodes() {
                for port in 0..t.ports() {
                    let dest = t.link_dest(NodeId(node), port);
                    let in_port = t.link_in_port(NodeId(node), port);
                    assert_eq!(dest.is_some(), in_port.is_some(), "{}", t.canonical());
                    let (Some(down), Some(q)) = (dest, in_port) else {
                        continue;
                    };
                    assert!(q < t.ports());
                    // The upstream table must invert the link exactly.
                    assert_eq!(
                        t.upstream(down, q),
                        Some((NodeId(node), port)),
                        "{}: upstream({down}, {q}) mismatch",
                        t.canonical()
                    );
                    // No two links may share an input port at the receiver.
                    if let Some(prev) = in_ports_seen.insert((down.0, q), node) {
                        panic!(
                            "{}: in-port {q} at {down} fed by both n{prev} and n{node}",
                            t.canonical()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cube_tables_preserve_torus_conventions() {
        // The optimized fabric's goldens depend on the torus conventions:
        // receiver in-port == sender out-port, and the upstream of input
        // port q is the neighbor reached through port q^1. The Cube
        // variant must reproduce them verbatim.
        let t = Topology::cube(2, 4);
        let torus = t.as_torus().clone();
        for node in 0..t.nodes() {
            for port in 0..t.ports() {
                let (dim, dir) = crate::fabric::port_to_link(port);
                let expect = torus.neighbor(NodeId(node), dim, dir);
                assert_eq!(t.link_dest(NodeId(node), port), Some(expect));
                assert_eq!(t.link_in_port(NodeId(node), port), Some(port));
                let (up_dim, up_dir) = crate::fabric::port_to_link(port ^ 1);
                let up = torus.neighbor(NodeId(node), up_dim, up_dir);
                assert_eq!(t.upstream(NodeId(node), port), Some((up, port)));
            }
        }
    }

    #[test]
    fn cube_route_hop_matches_legacy_route_step() {
        let t = Topology::cube(2, 4);
        let torus = t.as_torus().clone();
        for a in torus.node_ids() {
            for b in torus.node_ids() {
                for c in torus.node_ids() {
                    let legacy = match crate::routing::route_step(&torus, a, b, c) {
                        crate::routing::RouteStep::Eject => PortStep::Eject,
                        crate::routing::RouteStep::Forward { dim, direction, vc } => {
                            PortStep::Forward {
                                port: crate::fabric::link_to_port(dim, direction),
                                vc,
                            }
                        }
                    };
                    assert_eq!(t.route_hop(a, b, c), legacy);
                }
            }
        }
    }

    #[test]
    fn distance_matches_exhaustive_bfs() {
        // Shortest paths over the physical link graph. For the dragonfly
        // the search is restricted to paths crossing at most one global
        // channel — the canonical minimal-route class (chaining two
        // globals can be graph-shorter but is never a minimal dragonfly
        // route and would need extra VC classes for deadlock freedom).
        for t in all_small() {
            let n = t.nodes();
            let global_cap = match &t {
                Topology::Dragonfly(_) => 1usize,
                _ => usize::MAX,
            };
            let group_of = |node: usize| match &t {
                Topology::Dragonfly(d) => node / d.routers,
                _ => 0,
            };
            for src in 0..t.compute_nodes() {
                // State: (node, globals used so far).
                let states = if global_cap == usize::MAX { 1 } else { 2 };
                let mut dist = vec![usize::MAX; n * states];
                let mut queue = std::collections::VecDeque::new();
                dist[src * states] = 0;
                queue.push_back((src, 0usize));
                while let Some((u, used)) = queue.pop_front() {
                    let du = dist[u * states + used.min(states - 1)];
                    for port in 0..t.ports() {
                        if let Some(v) = t.link_dest(NodeId(u), port) {
                            let crosses = group_of(u) != group_of(v.0);
                            let next_used = used + usize::from(crosses);
                            if next_used > global_cap.min(states - 1) {
                                continue;
                            }
                            let slot = v.0 * states + next_used;
                            if dist[slot] == usize::MAX {
                                dist[slot] = du + 1;
                                queue.push_back((v.0, next_used));
                            }
                        }
                    }
                }
                for dst in 0..t.compute_nodes() {
                    let best = (0..states).map(|s| dist[dst * states + s]).min().unwrap();
                    assert_eq!(
                        t.distance(NodeId(src), NodeId(dst)),
                        best,
                        "{}: distance {src}->{dst} not BFS-minimal",
                        t.canonical()
                    );
                }
            }
        }
    }

    #[test]
    fn distance_distribution_sums_to_one() {
        for t in all_small() {
            let dist = t.distance_distribution();
            let sum: f64 = dist.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-12,
                "{}: distribution sums to {sum}",
                t.canonical()
            );
            assert!(dist.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let mean = t.mean_pairwise_distance();
            assert!(mean > 0.0, "{}", t.canonical());
            // Cube mean must agree with the closed-form torus value.
            if let Topology::Cube(torus) = &t {
                assert!((mean - torus.mean_pairwise_distance()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn routing_channel_dependencies_are_acyclic() {
        // Deadlock freedom: the channel dependency graph over
        // (node, port, vc-class) channels, with an edge for every
        // consecutive channel pair on any routed compute-pair path, must
        // be acyclic. This is the classical sufficient condition for
        // wormhole deadlock freedom with per-class buffers.
        for t in all_small() {
            let mut edges: std::collections::BTreeMap<
                (usize, usize, usize),
                std::collections::BTreeSet<(usize, usize, usize)>,
            > = std::collections::BTreeMap::new();
            for a in 0..t.compute_nodes() {
                for b in 0..t.compute_nodes() {
                    let hops = walk_route(&t, NodeId(a), NodeId(b));
                    for w in hops.windows(2) {
                        edges.entry(w[0]).or_default().insert(w[1]);
                    }
                }
            }
            // Iterative three-color DFS cycle detection.
            let mut color: std::collections::BTreeMap<(usize, usize, usize), u8> =
                std::collections::BTreeMap::new();
            let nodes: Vec<_> = edges.keys().copied().collect();
            for start in nodes {
                if color.get(&start).copied().unwrap_or(0) != 0 {
                    continue;
                }
                let mut stack = vec![(start, false)];
                while let Some((ch, done)) = stack.pop() {
                    if done {
                        color.insert(ch, 2);
                        continue;
                    }
                    match color.get(&ch).copied().unwrap_or(0) {
                        1 => continue,
                        2 => continue,
                        _ => {}
                    }
                    color.insert(ch, 1);
                    stack.push((ch, true));
                    if let Some(next) = edges.get(&ch) {
                        for &nx in next {
                            match color.get(&nx).copied().unwrap_or(0) {
                                1 => panic!(
                                    "{}: channel dependency cycle through {nx:?}",
                                    t.canonical()
                                ),
                                2 => {}
                                _ => stack.push((nx, false)),
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn app_neighbors_are_valid_compute_nodes() {
        for t in all_small() {
            for node in 0..t.compute_nodes() {
                let peers = t.app_neighbors(node);
                assert!(!peers.is_empty(), "{}: isolated node {node}", t.canonical());
                for p in &peers {
                    assert!(*p < t.compute_nodes(), "{}", t.canonical());
                    assert_ne!(*p, node, "{}: self-loop", t.canonical());
                }
                let uniq: std::collections::BTreeSet<_> = peers.iter().collect();
                assert_eq!(uniq.len(), peers.len(), "{}: duplicate peer", t.canonical());
            }
            // Identity mapping must be at least as local as random.
            assert!(
                t.mean_app_distance() <= t.mean_pairwise_distance() + 1e-12,
                "{}: app graph less local than random",
                t.canonical()
            );
        }
    }

    #[test]
    fn fat_tree_shape() {
        let t = Topology::fat_tree(2, 3);
        assert_eq!(t.compute_nodes(), 8);
        assert_eq!(t.nodes(), 8 + 4 + 2 + 1);
        assert_eq!(t.ports(), 3);
        // Sibling leaves are 2 hops apart; opposite halves 2*levels.
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 2);
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 6);
    }

    #[test]
    fn dragonfly_shape() {
        let d = Topology::dragonfly(3, 2);
        assert_eq!(d.nodes(), 7 * 3);
        assert_eq!(d.compute_nodes(), d.nodes());
        assert_eq!(d.ports(), 2 + 2);
        // Same group: one hop. Cross group: at most three.
        assert_eq!(d.distance(NodeId(0), NodeId(1)), 1);
        for a in 0..d.nodes() {
            for b in 0..d.nodes() {
                assert!(d.distance(NodeId(a), NodeId(b)) <= 3);
            }
        }
    }

    #[test]
    fn topology_parse_round_trips() {
        assert_eq!(Topology::parse("cube", 2, 8).unwrap(), Topology::cube(2, 8));
        assert_eq!(Topology::parse("mesh", 2, 8).unwrap(), Topology::mesh(8, 8));
        assert_eq!(
            Topology::parse("fattree", 2, 8).unwrap(),
            Topology::fat_tree(4, 3)
        );
        assert_eq!(
            Topology::parse("fattree:2,3", 2, 8).unwrap(),
            Topology::fat_tree(2, 3)
        );
        assert_eq!(
            Topology::parse("dragonfly:3,2", 2, 8).unwrap(),
            Topology::dragonfly(3, 2)
        );
        assert!(Topology::parse("mesh", 3, 8).is_err());
        assert!(Topology::parse("hypercube", 2, 8).is_err());
        for t in all_small() {
            // Canonical names are unique per shape.
            assert!(t.canonical().contains(t.family()));
        }
    }
}
