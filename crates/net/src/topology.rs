//! k-ary n-dimensional torus topology: coordinates, distances, and
//! neighbor relations.
//!
//! The simulated interconnect matches the paper's Section 3 architecture:
//! a torus with separate unidirectional channels in both directions of
//! every dimension. This module is purely geometric; routing policy lives
//! in [`crate::routing`].

use std::fmt;

/// Identifies a node (and its router) in the fabric. Node ids are the
/// row-major linearization of torus coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Direction of travel along a torus dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increasing coordinate (with wraparound `k-1 -> 0`).
    Plus,
    /// Decreasing coordinate (with wraparound `0 -> k-1`).
    Minus,
}

impl Direction {
    /// Both directions, in canonical order.
    pub const ALL: [Direction; 2] = [Direction::Plus, Direction::Minus];

    /// The canonical index of the direction (Plus = 0, Minus = 1).
    pub fn index(self) -> usize {
        match self {
            Direction::Plus => 0,
            Direction::Minus => 1,
        }
    }
}

/// A k-ary n-dimensional torus.
///
/// # Examples
///
/// ```
/// use commloc_net::{NodeId, Torus};
///
/// let torus = Torus::new(2, 8); // the paper's 8x8 machine
/// assert_eq!(torus.nodes(), 64);
/// // Opposite corners of an 8x8 torus are 4+4 hops apart.
/// assert_eq!(torus.distance(NodeId(0), torus.node_at(&[4, 4])), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Torus {
    radix: usize,
    dims: u32,
}

impl Torus {
    /// Creates a torus with `dims` dimensions of radix `radix`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero or `radix` is zero (a torus needs at least
    /// one node per ring).
    pub fn new(dims: u32, radix: usize) -> Self {
        assert!(dims > 0, "torus must have at least one dimension");
        assert!(radix > 0, "torus radix must be at least 1");
        Self { radix, dims }
    }

    /// The number of dimensions `n`.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// The per-dimension radix `k`.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Total number of nodes `k^n`.
    pub fn nodes(&self) -> usize {
        self.radix.pow(self.dims)
    }

    /// The coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coordinates(&self, node: NodeId) -> Vec<usize> {
        assert!(node.0 < self.nodes(), "node {node} out of range");
        let mut rest = node.0;
        let mut coords = vec![0; self.dims as usize];
        for c in coords.iter_mut() {
            *c = rest % self.radix;
            rest /= self.radix;
        }
        coords
    }

    /// The node at the given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate count does not match the dimension count
    /// or any coordinate is out of range.
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        assert_eq!(
            coords.len(),
            self.dims as usize,
            "coordinate count must equal dimension count"
        );
        let mut id = 0;
        for (i, &c) in coords.iter().enumerate().rev() {
            assert!(c < self.radix, "coordinate {c} out of range in dim {i}");
            id = id * self.radix + c;
        }
        NodeId(id)
    }

    /// The coordinate of `node` in dimension `dim` only (cheaper than
    /// materializing all coordinates).
    pub fn coordinate(&self, node: NodeId, dim: u32) -> usize {
        (node.0 / self.radix.pow(dim)) % self.radix
    }

    /// The neighbor of `node` one hop away in `dim`/`direction`.
    pub fn neighbor(&self, node: NodeId, dim: u32, direction: Direction) -> NodeId {
        let mut coords = self.coordinates(node);
        let c = coords[dim as usize];
        coords[dim as usize] = match direction {
            Direction::Plus => (c + 1) % self.radix,
            Direction::Minus => (c + self.radix - 1) % self.radix,
        };
        self.node_at(&coords)
    }

    /// Minimal hop distance between `a` and `b` in a single dimension's
    /// ring, given their coordinates in that dimension.
    pub fn ring_distance(&self, from: usize, to: usize) -> usize {
        let fwd = (to + self.radix - from) % self.radix;
        fwd.min(self.radix - fwd)
    }

    /// The minimal-direction hop count and direction of travel in one
    /// dimension. Ties (exactly half way around an even ring) resolve to
    /// [`Direction::Plus`], matching the deterministic e-cube router.
    pub fn ring_step(&self, from: usize, to: usize) -> (usize, Direction) {
        let fwd = (to + self.radix - from) % self.radix;
        let bwd = self.radix - fwd;
        if fwd == 0 {
            (0, Direction::Plus)
        } else if fwd <= bwd {
            (fwd, Direction::Plus)
        } else {
            (bwd, Direction::Minus)
        }
    }

    /// Minimal torus (hop) distance between two nodes — the number of
    /// network hops an e-cube-routed message between them traverses.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        (0..self.dims)
            .map(|d| self.ring_distance(self.coordinate(a, d), self.coordinate(b, d)))
            .sum()
    }

    /// Average distance between all ordered pairs of *distinct* nodes —
    /// the exact finite-machine counterpart of the paper's Eq. 17.
    pub fn mean_pairwise_distance(&self) -> f64 {
        let n = self.nodes();
        if n <= 1 {
            return 0.0;
        }
        // Sum of distances from one node to all others; by symmetry every
        // source sees the same multiset of distances.
        let origin = NodeId(0);
        let total: usize = (0..n)
            .filter(|&i| i != origin.0)
            .map(|i| self.distance(origin, NodeId(i)))
            .sum();
        total as f64 / (n - 1) as f64
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_panics() {
        Torus::new(0, 8);
    }

    #[test]
    fn coordinates_round_trip() {
        let t = Torus::new(3, 5);
        for id in t.node_ids() {
            let coords = t.coordinates(id);
            assert_eq!(t.node_at(&coords), id);
            for (d, &c) in coords.iter().enumerate() {
                assert_eq!(t.coordinate(id, d as u32), c);
            }
        }
    }

    #[test]
    fn neighbor_wraps_around() {
        let t = Torus::new(2, 8);
        let corner = t.node_at(&[7, 0]);
        assert_eq!(t.neighbor(corner, 0, Direction::Plus), t.node_at(&[0, 0]));
        assert_eq!(t.neighbor(corner, 1, Direction::Minus), t.node_at(&[7, 7]));
    }

    #[test]
    fn neighbor_inverse() {
        let t = Torus::new(2, 4);
        for id in t.node_ids() {
            for dim in 0..2 {
                let p = t.neighbor(id, dim, Direction::Plus);
                assert_eq!(t.neighbor(p, dim, Direction::Minus), id);
            }
        }
    }

    #[test]
    fn ring_distance_symmetric_and_bounded() {
        let t = Torus::new(1, 8);
        for a in 0..8 {
            for b in 0..8 {
                let d = t.ring_distance(a, b);
                assert_eq!(d, t.ring_distance(b, a));
                assert!(d <= 4);
            }
        }
        assert_eq!(t.ring_distance(0, 7), 1);
        assert_eq!(t.ring_distance(0, 4), 4);
    }

    #[test]
    fn ring_step_prefers_plus_on_tie() {
        let t = Torus::new(1, 8);
        assert_eq!(t.ring_step(0, 4), (4, Direction::Plus));
        assert_eq!(t.ring_step(0, 5), (3, Direction::Minus));
        assert_eq!(t.ring_step(0, 3), (3, Direction::Plus));
        assert_eq!(t.ring_step(6, 6), (0, Direction::Plus));
    }

    #[test]
    fn distance_matches_per_dimension_sum() {
        let t = Torus::new(2, 8);
        let a = t.node_at(&[1, 2]);
        let b = t.node_at(&[7, 6]);
        // dim 0: 1 -> 7 is 2 hops (backwards); dim 1: 2 -> 6 is 4 hops.
        assert_eq!(t.distance(a, b), 6);
        assert_eq!(t.distance(a, a), 0);
        assert_eq!(t.distance(a, b), t.distance(b, a));
    }

    #[test]
    fn mean_pairwise_distance_matches_eq17_closely() {
        // Eq. 17 for k = 8, n = 2 gives 1024/252 = 4.063...; the exact
        // enumeration over distinct pairs gives the same value (Eq. 17 is
        // exact for even k).
        let t = Torus::new(2, 8);
        let exact = t.mean_pairwise_distance();
        let eq17 = 2.0 * 8f64.powi(3) / (4.0 * (64.0 - 1.0));
        assert!((exact - eq17).abs() < 1e-12, "exact={exact} eq17={eq17}");
    }

    #[test]
    fn mean_pairwise_distance_single_node() {
        assert_eq!(Torus::new(2, 1).mean_pairwise_distance(), 0.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let t = Torus::new(2, 5);
        for a in t.node_ids().step_by(3) {
            for b in t.node_ids().step_by(4) {
                for c in t.node_ids().step_by(5) {
                    assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
                }
            }
        }
    }
}
