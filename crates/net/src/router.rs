//! Per-node router state: input virtual-channel buffers and output
//! channel allocation state.
//!
//! Routers are input-buffered wormhole switches. Each physical input link
//! carries [`DATELINE_VCS`](crate::routing::DATELINE_VCS) virtual channels
//! with private flit buffers; an additional single-VC input port receives
//! flits from the local node's injection channel. Output physical channels
//! are time-multiplexed among their virtual channels flit by flit; a
//! virtual channel, once allocated to a message's head, stays locked to
//! that message until its tail passes (wormhole flow control). Credits
//! track downstream buffer space per virtual channel.
//!
//! The routers hold only state; the cycle algorithm lives in
//! [`crate::fabric`], which owns all routers and the links between them.

use crate::message::Flit;
use crate::routing::VcIndex;
use std::collections::VecDeque;

/// Reference to an input virtual channel within one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct InputRef {
    pub port: usize,
    pub vc: VcIndex,
}

/// Reference to an output virtual channel within one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct OutputRef {
    pub port: usize,
    pub vc: VcIndex,
}

/// One input virtual channel: a flit FIFO plus the output assignment of
/// the message currently being forwarded from it.
#[derive(Debug, Default)]
pub(crate) struct VcBuffer {
    pub fifo: VecDeque<Flit>,
    /// Route of the message at the front, assigned when its head flit
    /// reaches the front and cleared when its tail departs.
    pub route: Option<OutputRef>,
}

/// One input port: a set of virtual-channel buffers fed by one physical
/// channel.
#[derive(Debug)]
pub(crate) struct InputPort {
    pub vcs: Vec<VcBuffer>,
}

impl InputPort {
    fn new(vc_count: usize) -> Self {
        Self {
            vcs: (0..vc_count).map(|_| VcBuffer::default()).collect(),
        }
    }
}

/// Credit sentinel for the ejection pseudo-channel, which the node drains
/// unconditionally.
pub(crate) const INFINITE_CREDITS: usize = usize::MAX;

/// Per-output-virtual-channel allocation state.
#[derive(Debug)]
pub(crate) struct OutputVc {
    /// The input VC whose message currently owns this output VC.
    pub locked_by: Option<InputRef>,
    /// Free flit slots in the downstream buffer for this VC.
    pub credits: usize,
    /// Round-robin pointer for allocating this VC among competing input
    /// VCs (flattened input index).
    pub rr_input: usize,
}

/// One output port: per-VC allocation state plus the round-robin pointer
/// that multiplexes the physical channel among its VCs.
#[derive(Debug)]
pub(crate) struct OutputPort {
    pub vcs: Vec<OutputVc>,
    pub rr_vc: usize,
}

impl OutputPort {
    fn new(vc_count: usize, credits: usize) -> Self {
        Self {
            vcs: (0..vc_count)
                .map(|_| OutputVc {
                    locked_by: None,
                    credits,
                    rr_input: 0,
                })
                .collect(),
            rr_vc: 0,
        }
    }
}

/// A single router: input buffers and output allocation state.
#[derive(Debug)]
pub(crate) struct Router {
    pub inputs: Vec<InputPort>,
    pub outputs: Vec<OutputPort>,
}

impl Router {
    /// Builds a router with `link_ports` inter-router ports (a torus has
    /// `2*dims`) carrying `link_vcs` virtual channels each, plus one
    /// single-VC injection input and one single-VC ejection output.
    pub(crate) fn new(link_ports: usize, link_vcs: usize, link_credits: usize) -> Self {
        let mut inputs: Vec<InputPort> =
            (0..link_ports).map(|_| InputPort::new(link_vcs)).collect();
        inputs.push(InputPort::new(1)); // injection input
        let mut outputs: Vec<OutputPort> = (0..link_ports)
            .map(|_| OutputPort::new(link_vcs, link_credits))
            .collect();
        outputs.push(OutputPort::new(1, INFINITE_CREDITS)); // ejection
        Self { inputs, outputs }
    }

    /// Total flits currently buffered in this router. The optimized
    /// engine tracks occupancy incrementally; this per-VC scan remains
    /// for the reference engine and tests.
    #[cfg_attr(not(any(test, feature = "reference-engine")), allow(dead_code))]
    pub(crate) fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|vc| vc.fifo.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_port_layout() {
        let r = Router::new(4, 2, 8);
        assert_eq!(r.inputs.len(), 5); // 4 link + 1 injection
        assert_eq!(r.outputs.len(), 5); // 4 link + 1 ejection
        assert_eq!(r.inputs[0].vcs.len(), 2);
        assert_eq!(r.inputs[4].vcs.len(), 1);
        assert_eq!(r.outputs[4].vcs.len(), 1);
        assert_eq!(r.outputs[4].vcs[0].credits, INFINITE_CREDITS);
        assert_eq!(r.outputs[0].vcs[0].credits, 8);
    }

    #[test]
    fn new_router_is_empty() {
        let r = Router::new(4, 2, 8);
        assert_eq!(r.buffered_flits(), 0);
    }
}
