//! The retained **naive reference engine**: the original
//! all-components-every-cycle fabric implementation, kept verbatim so the
//! optimized active-set engine in [`crate::fabric`] can be golden-tested
//! against it.
//!
//! The optimized engine must be **bit-for-bit cycle-accurate**: for the
//! same seed, workload, and fault plan it must produce identical
//! [`FabricStats`], identical per-node delivery order, and an identical
//! [`FaultLog`]. The equivalence tests at the bottom of this file drive
//! both engines in lockstep and assert exactly that, across multiple
//! seeds, topologies (2D and 3D tori), and fault plans with stalls and
//! kills.
//!
//! This module is compiled only for tests, or when the `reference-engine`
//! feature is enabled (which additionally exports [`ReferenceFabric`] for
//! out-of-crate benchmarking, e.g. the perf harness's speedup-vs-reference
//! measurement).
//!
//! Intentionally unoptimized — do not "fix" the full scans here; their
//! slowness is the point of comparison.

use crate::fault::{FaultLog, FaultPlan};
use crate::message::{Delivery, Flit, Message, MessageId};
use crate::router::{InputRef, OutputRef, Router, INFINITE_CREDITS};
use crate::routing::{VcIndex, DATELINE_VCS};
use crate::stats::FabricStats;
use crate::topology::{NodeId, PortStep, Topology, Torus};
use crate::{FabricConfig, FabricError};
use std::collections::{HashMap, VecDeque};

/// Per-message bookkeeping while in flight.
#[derive(Debug)]
struct Pending<P> {
    message: Message<P>,
    enqueued_at: u64,
    injected_at: u64,
    dst_arrived_at: u64,
    head_delivered_at: u64,
    hops: u32,
}

/// Network-interface injection state for one node.
#[derive(Debug, Default)]
struct NetworkInterface {
    queue: VecDeque<MessageId>,
    streaming: Option<(MessageId, u32)>,
}

/// The original unoptimized cycle engine: iterates every node, port, and
/// virtual channel each cycle and resolves messages through hash maps.
///
/// Behaviourally identical to [`crate::Fabric`] (which is the point);
/// retained purely as the golden model for equivalence tests and as the
/// denominator of the perf harness's speedup metric.
#[derive(Debug)]
pub struct ReferenceFabric<P> {
    topology: Topology,
    config: FabricConfig,
    routers: Vec<Router>,
    links: Vec<Option<(Flit, VcIndex)>>,
    inj_links: Vec<Option<Flit>>,
    inj_credits: Vec<usize>,
    nis: Vec<NetworkInterface>,
    pending: HashMap<u64, Pending<P>>,
    deliveries: Vec<VecDeque<Delivery<P>>>,
    input_vc_list: Vec<(usize, usize)>,
    next_id: u64,
    cycle: u64,
    stats: FabricStats,
    fault: Option<FaultPlan>,
    doomed: HashMap<u64, (usize, usize)>,
    activity: u64,
}

impl<P> ReferenceFabric<P> {
    /// Builds a reference fabric over the given topology.
    pub fn new(topology: impl Into<Topology>, config: FabricConfig) -> Self {
        let topology = topology.into();
        assert!(config.link_vcs >= DATELINE_VCS);
        assert!(config.link_vcs.is_multiple_of(DATELINE_VCS));
        assert!(config.vc_buffer_capacity > 0);
        assert!(config.injection_buffer_capacity > 0);
        let nodes = topology.nodes();
        let link_ports = topology.ports();
        let routers = (0..nodes)
            .map(|_| Router::new(link_ports, config.link_vcs, config.vc_buffer_capacity))
            .collect();
        let mut input_vc_list = Vec::new();
        for port in 0..link_ports {
            for vc in 0..config.link_vcs {
                input_vc_list.push((port, vc));
            }
        }
        input_vc_list.push((link_ports, 0));
        let stats = FabricStats::new(nodes, link_ports);
        Self {
            topology,
            config,
            routers,
            links: vec![None; nodes * link_ports],
            inj_links: vec![None; nodes],
            inj_credits: vec![config.injection_buffer_capacity; nodes],
            nis: (0..nodes).map(|_| NetworkInterface::default()).collect(),
            pending: HashMap::new(),
            deliveries: (0..nodes).map(|_| VecDeque::new()).collect(),
            input_vc_list,
            next_id: 0,
            cycle: 0,
            stats,
            fault: None,
            doomed: HashMap::new(),
            activity: 0,
        }
    }

    /// Builds a reference fabric with an attached fault-injection plan.
    pub fn with_fault_plan(
        topology: impl Into<Topology>,
        config: FabricConfig,
        plan: FaultPlan,
    ) -> Self {
        let mut fabric = Self::new(topology, config);
        fabric.fault = Some(plan);
        fabric
    }

    /// The log of injected faults (`None` when no plan is attached).
    pub fn fault_log(&self) -> Option<&FaultLog> {
        self.fault.as_ref().map(FaultPlan::log)
    }

    /// The underlying topology.
    #[allow(dead_code)] // for `reference-engine` feature consumers
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The underlying torus (cube topologies only).
    ///
    /// # Panics
    ///
    /// Panics if the fabric was built over a non-cube topology.
    #[allow(dead_code)] // for `reference-engine` feature consumers
    pub fn torus(&self) -> &Torus {
        self.topology.as_torus()
    }

    /// The current network cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Monotone count of flit movements since construction.
    pub fn activity(&self) -> u64 {
        self.activity
    }

    /// Enqueues a message for injection; see [`crate::Fabric::inject`].
    pub fn inject(&mut self, message: Message<P>) -> MessageId {
        assert!(message.src.0 < self.topology.compute_nodes());
        assert!(message.dst.0 < self.topology.compute_nodes());
        let id = MessageId(self.next_id);
        self.next_id += 1;
        let src = message.src;
        self.pending.insert(
            id.0,
            Pending {
                message,
                enqueued_at: self.cycle,
                injected_at: 0,
                dst_arrived_at: 0,
                head_delivered_at: 0,
                hops: 0,
            },
        );
        self.nis[src.0].queue.push_back(id);
        id
    }

    /// Messages injected but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Takes the next completed delivery at `node`, if any.
    pub fn poll_delivery(&mut self, node: NodeId) -> Option<Delivery<P>> {
        self.deliveries[node.0].pop_front()
    }

    /// Total flits currently buffered across all routers.
    pub fn buffered_flits(&self) -> usize {
        self.routers.iter().map(Router::buffered_flits).sum()
    }

    /// Total messages ever injected.
    pub fn total_injected(&self) -> u64 {
        self.next_id
    }

    /// Advances the fabric by one network cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on inconsistent internal bookkeeping.
    pub fn step(&mut self) -> Result<(), FabricError> {
        self.cycle += 1;
        self.stats.cycles += 1;
        if let Some(plan) = self.fault.as_mut() {
            plan.activate(self.cycle);
        }
        self.deliver_links();
        self.compute_routes()?;
        let credit_returns = self.switch_traversal()?;
        self.apply_credit_returns(credit_returns);
        self.inject_flits()
    }

    /// Advances until no messages remain in flight or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Propagates any [`FabricError`] raised by [`ReferenceFabric::step`].
    #[allow(dead_code)] // for `reference-engine` feature consumers
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Result<bool, FabricError> {
        for _ in 0..max_cycles {
            if self.pending.is_empty() {
                return Ok(true);
            }
            self.step()?;
        }
        Ok(self.pending.is_empty())
    }

    fn link_ports(&self) -> usize {
        self.topology.ports()
    }

    fn local_port(&self) -> usize {
        self.topology.ports()
    }

    fn deliver_links(&mut self) {
        let link_ports = self.link_ports();
        for node in 0..self.topology.nodes() {
            for port in 0..link_ports {
                if let Some((flit, vc)) = self.links[node * link_ports + port].take() {
                    let down = self.topology.link_dest(NodeId(node), port).unwrap();
                    let in_port = self.topology.link_in_port(NodeId(node), port).unwrap();
                    if flit.kind.is_head() {
                        if let Some(pending) = self.pending.get_mut(&flit.message.0) {
                            if pending.message.dst == down {
                                pending.dst_arrived_at = self.cycle;
                            }
                        }
                    }
                    self.routers[down.0].inputs[in_port].vcs[vc]
                        .fifo
                        .push_back(flit);
                }
            }
            if let Some(flit) = self.inj_links[node].take() {
                let local = self.local_port();
                self.routers[node].inputs[local].vcs[0].fifo.push_back(flit);
            }
        }
    }

    fn compute_routes(&mut self) -> Result<(), FabricError> {
        let local = self.local_port();
        for node in 0..self.topology.nodes() {
            for port in 0..self.routers[node].inputs.len() {
                for vc in 0..self.routers[node].inputs[port].vcs.len() {
                    let buf = &self.routers[node].inputs[port].vcs[vc];
                    if buf.route.is_some() {
                        continue;
                    }
                    let Some(front) = buf.fifo.front() else {
                        continue;
                    };
                    if !front.kind.is_head() {
                        continue;
                    }
                    let pending =
                        self.pending
                            .get(&front.message.0)
                            .ok_or(FabricError::UnknownMessage {
                                message: front.message,
                                context: "route computation",
                                cycle: self.cycle,
                            })?;
                    let (src, dst) = (pending.message.src, pending.message.dst);
                    let step = self.topology.route_hop(src, dst, NodeId(node));
                    let output = match step {
                        PortStep::Eject => OutputRef { port: local, vc: 0 },
                        PortStep::Forward { port, vc } => OutputRef { port, vc },
                    };
                    self.routers[node].inputs[port].vcs[vc].route = Some(output);
                }
            }
        }
        Ok(())
    }

    fn switch_traversal(&mut self) -> Result<Vec<CreditReturn>, FabricError> {
        let mut credit_returns = Vec::new();
        let node_count = self.topology.nodes();
        let link_ports = self.link_ports();
        let output_count = link_ports + 1;
        for node in 0..node_count {
            if let Some(plan) = self.fault.as_ref() {
                if plan.router_stalled(self.cycle, node) {
                    continue;
                }
            }
            for output in 0..output_count {
                if output < link_ports {
                    if let Some(plan) = self.fault.as_ref() {
                        if plan.link_blocked(self.cycle, node, output) {
                            continue;
                        }
                    }
                }
                if let Some((input, out_vc)) = self.pick_sender(node, output) {
                    self.forward_flit(node, output, out_vc, input, &mut credit_returns)?;
                }
            }
        }
        Ok(credit_returns)
    }

    fn pick_sender(&mut self, node: usize, output: usize) -> Option<(InputRef, VcIndex)> {
        let vc_count = self.routers[node].outputs[output].vcs.len();
        for i in 0..vc_count {
            let w = (self.routers[node].outputs[output].rr_vc + i) % vc_count;
            let (locked_by, credits) = {
                let ovc = &self.routers[node].outputs[output].vcs[w];
                (ovc.locked_by, ovc.credits)
            };
            if credits == 0 {
                continue;
            }
            if let Some(input) = locked_by {
                let buf = &self.routers[node].inputs[input.port].vcs[input.vc];
                if buf.fifo.front().is_some() {
                    self.routers[node].outputs[output].rr_vc = (w + 1) % vc_count;
                    return Some((input, w));
                }
            } else if let Some(input) = self.find_requester(node, output, w) {
                let ovc = &mut self.routers[node].outputs[output].vcs[w];
                ovc.locked_by = Some(input);
                self.routers[node].outputs[output].rr_vc = (w + 1) % vc_count;
                return Some((input, w));
            }
        }
        None
    }

    fn find_requester(&mut self, node: usize, output: usize, w: VcIndex) -> Option<InputRef> {
        let list_len = self.input_vc_list.len();
        let start = self.routers[node].outputs[output].vcs[w].rr_input;
        for i in 0..list_len {
            let idx = (start + i) % list_len;
            let (port, vc) = self.input_vc_list[idx];
            if self.routers[node].inputs.len() <= port
                || self.routers[node].inputs[port].vcs.len() <= vc
            {
                continue;
            }
            let buf = &self.routers[node].inputs[port].vcs[vc];
            let Some(route) = buf.route else { continue };
            if route.port != output || self.vc_class(output, w) != route.vc {
                continue;
            }
            let Some(front) = buf.fifo.front() else {
                continue;
            };
            if !front.kind.is_head() {
                continue;
            }
            self.routers[node].outputs[output].vcs[w].rr_input = (idx + 1) % list_len;
            return Some(InputRef { port, vc });
        }
        None
    }

    fn vc_class(&self, output: usize, w: VcIndex) -> usize {
        if output == self.local_port() || w < self.config.link_vcs / DATELINE_VCS {
            0
        } else {
            1
        }
    }

    fn forward_flit(
        &mut self,
        node: usize,
        output: usize,
        out_vc: VcIndex,
        input: InputRef,
        credit_returns: &mut Vec<CreditReturn>,
    ) -> Result<(), FabricError> {
        let local = self.local_port();
        let flit = {
            let buf = &mut self.routers[node].inputs[input.port].vcs[input.vc];
            let flit = buf.fifo.pop_front().ok_or(FabricError::MissingFlit {
                node: NodeId(node),
                cycle: self.cycle,
            })?;
            if flit.kind.is_tail() {
                buf.route = None;
            }
            flit
        };
        if input.port == local {
            credit_returns.push(CreditReturn::Injection { node });
        } else {
            let (upstream, up_port) = self.topology.upstream(NodeId(node), input.port).unwrap();
            credit_returns.push(CreditReturn::Link {
                node: upstream.0,
                port: up_port,
                vc: input.vc,
            });
        }
        if flit.kind.is_tail() {
            self.routers[node].outputs[output].vcs[out_vc].locked_by = None;
        }
        let mut doomed_here = self.doomed.get(&flit.message.0) == Some(&(node, output));
        if !doomed_here && output != local && flit.kind.is_head() {
            if let Some(plan) = self.fault.as_mut() {
                if let Some(mask) = plan.roll_corrupt(self.cycle, node, output, flit.message) {
                    if let Some(pending) = self.pending.get_mut(&flit.message.0) {
                        if pending.message.is_intact() {
                            self.stats.corrupted_messages += 1;
                        }
                        pending.message.checksum ^= mask;
                    }
                }
                if plan.roll_drop(self.cycle, node, output, flit.message) {
                    self.doomed.insert(flit.message.0, (node, output));
                    doomed_here = true;
                }
                plan.roll_stall(self.cycle, node, output);
            }
        }
        if doomed_here {
            self.stats.dropped_flits += 1;
            self.activity += 1;
            if flit.kind.is_tail() {
                self.doomed.remove(&flit.message.0);
                if self.pending.remove(&flit.message.0).is_some() {
                    self.stats.dropped_messages += 1;
                }
            }
        } else if output == local {
            self.eject_flit(node, flit)?;
        } else {
            let ovc = &mut self.routers[node].outputs[output].vcs[out_vc];
            debug_assert!(ovc.credits > 0 && ovc.credits != INFINITE_CREDITS);
            ovc.credits -= 1;
            let link_ports = self.link_ports();
            let slot = &mut self.links[node * link_ports + output];
            debug_assert!(slot.is_none());
            *slot = Some((flit, out_vc));
            self.stats.link_busy[node * link_ports + output] += 1;
            self.stats.link_flits += 1;
            self.activity += 1;
        }
        Ok(())
    }

    fn eject_flit(&mut self, node: usize, flit: Flit) -> Result<(), FabricError> {
        self.stats.ejection_busy[node] += 1;
        self.activity += 1;
        let cycle = self.cycle;
        let unknown = move |context| FabricError::UnknownMessage {
            message: flit.message,
            context,
            cycle,
        };
        let pending = self
            .pending
            .get_mut(&flit.message.0)
            .ok_or(unknown("ejection"))?;
        if flit.kind.is_head() {
            pending.head_delivered_at = self.cycle;
            pending.hops =
                self.topology
                    .distance(pending.message.src, pending.message.dst) as u32;
        }
        if flit.kind.is_tail() {
            let pending = self
                .pending
                .remove(&flit.message.0)
                .ok_or(unknown("tail ejection"))?;
            let delivery = Delivery {
                enqueued_at: pending.enqueued_at,
                injected_at: pending.injected_at,
                dst_arrived_at: pending.dst_arrived_at,
                head_delivered_at: pending.head_delivered_at,
                delivered_at: self.cycle,
                hops: pending.hops,
                message: pending.message,
            };
            self.stats.record_delivery(
                delivery.total_latency(),
                delivery.head_network_latency(),
                delivery.hops,
                delivery.injected_at - delivery.enqueued_at,
                delivery.message.length,
            );
            self.deliveries[node].push_back(delivery);
        }
        Ok(())
    }

    fn apply_credit_returns(&mut self, credit_returns: Vec<CreditReturn>) {
        for ret in credit_returns {
            match ret {
                CreditReturn::Injection { node } => {
                    self.inj_credits[node] += 1;
                }
                CreditReturn::Link { node, port, vc } => {
                    self.routers[node].outputs[port].vcs[vc].credits += 1;
                }
            }
        }
    }

    fn inject_flits(&mut self) -> Result<(), FabricError> {
        for node in 0..self.topology.nodes() {
            if self.inj_links[node].is_some() {
                continue;
            }
            while self.nis[node].streaming.is_none() {
                let Some(id) = self.nis[node].queue.pop_front() else {
                    break;
                };
                let cycle = self.cycle;
                let unknown = move |context| FabricError::UnknownMessage {
                    message: id,
                    context,
                    cycle,
                };
                let Some(pending) = self.pending.get_mut(&id.0) else {
                    return Err(unknown("injection queue"));
                };
                if pending.message.src == pending.message.dst {
                    pending.injected_at = self.cycle;
                    let pending = self
                        .pending
                        .remove(&id.0)
                        .ok_or(unknown("loopback delivery"))?;
                    let delivery = Delivery {
                        enqueued_at: pending.enqueued_at,
                        injected_at: self.cycle,
                        dst_arrived_at: self.cycle,
                        head_delivered_at: self.cycle,
                        delivered_at: self.cycle,
                        hops: 0,
                        message: pending.message,
                    };
                    self.stats.record_delivery(
                        delivery.total_latency(),
                        0,
                        0,
                        delivery.injected_at - delivery.enqueued_at,
                        delivery.message.length,
                    );
                    let dst = delivery.message.dst.0;
                    self.deliveries[dst].push_back(delivery);
                    self.activity += 1;
                    break;
                }
                self.nis[node].streaming = Some((id, 0));
            }
            let Some((id, index)) = self.nis[node].streaming else {
                continue;
            };
            if self.inj_credits[node] == 0 {
                continue;
            }
            let Some(pending) = self.pending.get_mut(&id.0) else {
                return Err(FabricError::UnknownMessage {
                    message: id,
                    context: "injection streaming",
                    cycle: self.cycle,
                });
            };
            if index == 0 {
                pending.injected_at = self.cycle;
                self.stats.injected_messages += 1;
            }
            let kind = pending.message.flit_kind(index);
            let length = pending.message.length;
            self.inj_links[node] = Some(Flit {
                message: id,
                kind,
                slot: 0,
            });
            self.inj_credits[node] -= 1;
            self.stats.injected_flits += 1;
            self.stats.injection_busy[node] += 1;
            self.activity += 1;
            if index + 1 == length {
                self.nis[node].streaming = None;
            } else {
                self.nis[node].streaming = Some((id, index + 1));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
enum CreditReturn {
    Injection {
        node: usize,
    },
    Link {
        node: usize,
        port: usize,
        vc: VcIndex,
    },
}

#[cfg(test)]
mod equivalence_tests {
    use super::ReferenceFabric;
    use crate::fault::FaultPlan;
    use crate::rng::DetRng;
    use crate::{Direction, Fabric, FabricConfig, Message, NodeId, Torus};

    /// A deterministic open-loop workload: each cycle, each node may
    /// enqueue a message to a pseudo-random destination. Returns the
    /// injections for `cycle` so both engines see the identical schedule.
    struct Workload {
        rng: DetRng,
        nodes: usize,
        rate: f64,
        length: u32,
    }

    impl Workload {
        fn new(seed: u64, nodes: usize, rate: f64, length: u32) -> Self {
            Self {
                rng: DetRng::new(seed),
                nodes,
                rate,
                length,
            }
        }

        fn pulse(&mut self) -> Vec<Message<u64>> {
            let mut out = Vec::new();
            for src in 0..self.nodes {
                if self.rng.chance(self.rate) {
                    let dst = self.rng.index(self.nodes);
                    let payload = self.rng.next_u64();
                    out.push(Message::new(NodeId(src), NodeId(dst), self.length, payload));
                }
            }
            out
        }
    }

    /// Drains both engines' delivery queues and asserts identical
    /// delivery order and contents at every node.
    fn assert_deliveries_match(
        opt: &mut Fabric<u64>,
        reference: &mut ReferenceFabric<u64>,
        nodes: usize,
    ) {
        for node in 0..nodes {
            loop {
                let a = opt.poll_delivery(NodeId(node));
                let b = reference.poll_delivery(NodeId(node));
                assert_eq!(a, b, "delivery mismatch at node {node}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Runs both engines in lockstep under the same workload and fault
    /// plan, checking stats, deliveries, and fault logs cycle for cycle.
    fn lockstep(
        torus: Torus,
        config: FabricConfig,
        plan: Option<FaultPlan>,
        seed: u64,
        rate: f64,
        cycles: u64,
    ) {
        let nodes = torus.nodes();
        let mut opt: Fabric<u64> = match plan.clone() {
            Some(p) => Fabric::with_fault_plan(torus.clone(), config, p),
            None => Fabric::new(torus.clone(), config),
        };
        let mut reference: ReferenceFabric<u64> = match plan {
            Some(p) => ReferenceFabric::with_fault_plan(torus, config, p),
            None => ReferenceFabric::new(torus.clone(), config),
        };
        let mut load = Workload::new(seed, nodes, rate, 8);
        let mut mirror = Workload::new(seed, nodes, rate, 8);
        for cycle in 0..cycles {
            for m in load.pulse() {
                opt.inject(m);
            }
            for m in mirror.pulse() {
                reference.inject(m);
            }
            opt.step().unwrap();
            reference.step().unwrap();
            if cycle % 64 == 0 {
                assert_eq!(
                    opt.stats(),
                    reference.stats(),
                    "stats diverged at cycle {cycle}"
                );
            }
        }
        // Let in-flight traffic drain (bounded; wedged fabrics stay put).
        for _ in 0..20_000 {
            if opt.in_flight() == 0 && reference.in_flight() == 0 {
                break;
            }
            opt.step().unwrap();
            reference.step().unwrap();
        }
        assert_eq!(opt.cycle(), reference.cycle());
        assert_eq!(opt.stats(), reference.stats(), "final stats diverged");
        assert_eq!(opt.total_injected(), reference.total_injected());
        assert_eq!(opt.in_flight(), reference.in_flight());
        assert_eq!(opt.buffered_flits(), reference.buffered_flits());
        assert_eq!(opt.activity(), reference.activity());
        assert_eq!(
            opt.fault_log(),
            reference.fault_log(),
            "fault logs diverged"
        );
        assert_deliveries_match(&mut opt, &mut reference, nodes);
    }

    #[test]
    fn matches_reference_across_seeds_2d() {
        for seed in [1u64, 2, 3] {
            lockstep(
                Torus::new(2, 8),
                FabricConfig::default(),
                None,
                seed,
                0.03,
                2_000,
            );
        }
    }

    #[test]
    fn matches_reference_multi_vc_deep_buffers() {
        lockstep(
            Torus::new(2, 8),
            FabricConfig {
                link_vcs: 4,
                vc_buffer_capacity: 16,
                injection_buffer_capacity: 16,
                ..FabricConfig::default()
            },
            None,
            7,
            0.05,
            2_000,
        );
    }

    #[test]
    fn matches_reference_3d_torus() {
        for seed in [11u64, 12, 13] {
            lockstep(
                Torus::new(3, 4),
                FabricConfig::default(),
                None,
                seed,
                0.02,
                1_500,
            );
        }
    }

    #[test]
    fn matches_reference_under_probabilistic_faults() {
        for seed in [21u64, 22, 23] {
            let plan = FaultPlan::new(seed)
                .with_drop_rate(0.01)
                .with_corrupt_rate(0.02)
                .with_stall_rate(0.005, 40);
            lockstep(
                Torus::new(2, 8),
                FabricConfig::default(),
                Some(plan),
                seed,
                0.04,
                2_500,
            );
        }
    }

    #[test]
    fn matches_reference_with_scheduled_stalls_and_kills() {
        // Stalls + a permanent kill: traffic through the dead link wedges
        // identically in both engines; everything else keeps moving.
        let plan = FaultPlan::new(5)
            .stall_router_at(300, 9, 200)
            .stall_link_at(700, 14, 1, Direction::Minus, 150)
            .kill_link_at(1_000, 0, 0, Direction::Plus);
        lockstep(
            Torus::new(2, 8),
            FabricConfig::default(),
            Some(plan),
            31,
            0.02,
            2_500,
        );
    }

    #[test]
    fn matches_reference_saturated_fan_in() {
        // All-to-one hotspot: maximal arbitration contention, the worst
        // case for round-robin pointer equivalence.
        let torus = Torus::new(2, 4);
        let nodes = torus.nodes();
        let mut opt: Fabric<u64> = Fabric::new(torus.clone(), FabricConfig::default());
        let mut reference: ReferenceFabric<u64> =
            ReferenceFabric::new(torus, FabricConfig::default());
        for round in 0..4u64 {
            for node in 0..nodes {
                let m = Message::new(NodeId(node), NodeId(5), 6, round);
                opt.inject(m.clone());
                reference.inject(m);
            }
        }
        for _ in 0..5_000 {
            if opt.in_flight() == 0 && reference.in_flight() == 0 {
                break;
            }
            opt.step().unwrap();
            reference.step().unwrap();
        }
        assert_eq!(opt.in_flight(), 0);
        assert_eq!(opt.stats(), reference.stats());
        assert_deliveries_match(&mut opt, &mut reference, nodes);
    }

    #[test]
    fn fast_forward_matches_stepping_through_idle_gaps() {
        // An idle fabric fast-forwarded to a target cycle must land in the
        // same state as one stepped there, including scheduled faults that
        // fire mid-gap.
        let mk_plan = || {
            FaultPlan::new(9).stall_router_at(500, 3, 100).kill_link_at(
                1_200,
                7,
                0,
                Direction::Plus,
            )
        };
        let torus = Torus::new(2, 8);
        let mut ff: Fabric<u64> =
            Fabric::with_fault_plan(torus.clone(), FabricConfig::default(), mk_plan());
        let mut stepped: Fabric<u64> =
            Fabric::with_fault_plan(torus, FabricConfig::default(), mk_plan());
        // Burst, drain, then a long idle gap.
        for node in 0..8 {
            let m = Message::new(NodeId(node), NodeId(63 - node), 8, node as u64);
            ff.inject(m.clone());
            stepped.inject(m);
        }
        assert!(ff.run_until_idle(2_000).unwrap());
        assert!(stepped.run_until_idle(2_000).unwrap());
        assert_eq!(ff.cycle(), stepped.cycle());
        let gap = 2_000 - ff.cycle();
        assert_eq!(ff.fast_forward(gap), gap);
        for _ in 0..gap {
            stepped.step().unwrap();
        }
        assert_eq!(ff.cycle(), 2_000);
        assert_eq!(ff.cycle(), stepped.cycle());
        assert_eq!(ff.stats(), stepped.stats());
        assert_eq!(ff.fault_log(), stepped.fault_log());
        // Traffic injected after the gap behaves identically.
        let m = Message::new(NodeId(0), NodeId(5), 8, 99u64);
        ff.inject(m.clone());
        stepped.inject(m);
        assert!(ff.run_until_idle(200).unwrap());
        assert!(stepped.run_until_idle(200).unwrap());
        assert_eq!(ff.stats(), stepped.stats());
        assert_eq!(
            ff.poll_delivery(NodeId(5)).unwrap(),
            stepped.poll_delivery(NodeId(5)).unwrap()
        );
    }
}
