//! Differential fuzzing of the optimized [`Fabric`] against the retained
//! [`ReferenceFabric`].
//!
//! A [`FuzzScenario`] is drawn deterministically from a single seed (via
//! the in-tree [`DetRng`] — no external fuzzing framework): a random
//! torus (1–3 dimensions, skinny rings to small cubes), buffering and
//! virtual-channel configuration, trace capacity, open-loop traffic
//! pattern, and an optional fault plan mixing probabilistic drop /
//! corrupt / stall faults with scheduled link kills and router stalls.
//! [`run_scenario`] then drives both engines in lockstep under the
//! identical injection schedule and checks:
//!
//! * bit-identical [`FabricStats`](crate::FabricStats) every 64 cycles
//!   and after the drain phase,
//! * identical per-node delivery order and contents,
//! * identical fault logs, in-flight populations, and buffered flits,
//! * cross-layer invariants on the optimized engine that the reference
//!   engine cannot express: per-delivery breakdown telescoping
//!   (`MessageBreakdown::total() == Delivery::total_latency()`), the
//!   aggregate [`LatencyBreakdown`](crate::LatencyBreakdown) agreeing
//!   with the stats counters, and message conservation
//!   (`injected == delivered + dropped + in-flight`).
//!
//! On a mismatch, [`shrink`] greedily reduces the failing scenario
//! (fewer cycles, lower rate, no faults, smaller torus, shallower
//! buffers) while re-checking that it still fails, and
//! [`ShrinkOutcome::repro_test`] prints a ready-to-paste `#[test]`
//! function that replays the minimal scenario.
//!
//! The module is compiled for in-crate tests and exported under the
//! `reference-engine` feature (the same gate as [`ReferenceFabric`]), so
//! `commloc-sim` can drive bounded fuzz campaigns from the `commloc fuzz`
//! CLI subcommand and CI.

use crate::fault::FaultPlan;
use crate::message::Message;
use crate::reference::ReferenceFabric;
use crate::rng::DetRng;
use crate::topology::{Direction, NodeId, Topology};
use crate::{Fabric, FabricConfig};
use std::fmt;

/// Domain-separation constant so scenario generation never shares a
/// stream with the workload draws (which use the raw seed).
const SCENARIO_SALT: u64 = 0x5CE2_A210_D1FF_F0D0;

/// Declarative fault-plan description, kept as plain data (rather than a
/// built [`FaultPlan`]) so the shrinker can drop pieces of it and
/// [`ShrinkOutcome::repro_test`] can print it as a literal.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability a message is dropped mid-flight.
    pub drop_rate: f64,
    /// Probability a delivered payload is corrupted.
    pub corrupt_rate: f64,
    /// Per-cycle probability of a transient global stall.
    pub stall_rate: f64,
    /// Length of each transient stall, in cycles.
    pub stall_window: u64,
    /// Scheduled permanent link kills: `(cycle, node, dim, dir)`.
    pub kills: Vec<(u64, usize, u32, Direction)>,
    /// Scheduled transient link stalls: `(cycle, node, dim, dir, window)`.
    pub link_stalls: Vec<(u64, usize, u32, Direction, u64)>,
    /// Scheduled transient router stalls: `(cycle, node, window)`.
    pub router_stalls: Vec<(u64, usize, u64)>,
}

impl FaultSpec {
    /// Builds the concrete [`FaultPlan`] this spec describes, seeded so
    /// both engines draw the identical fault stream.
    pub fn build(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed)
            .with_drop_rate(self.drop_rate)
            .with_corrupt_rate(self.corrupt_rate)
            .with_stall_rate(self.stall_rate, self.stall_window);
        for &(cycle, node, dim, dir) in &self.kills {
            plan = plan.kill_link_at(cycle, node, dim, dir);
        }
        for &(cycle, node, dim, dir, window) in &self.link_stalls {
            plan = plan.stall_link_at(cycle, node, dim, dir, window);
        }
        for &(cycle, node, window) in &self.router_stalls {
            plan = plan.stall_router_at(cycle, node, window);
        }
        plan
    }

    /// `true` when the spec describes no faults at all (the shrinker
    /// replaces such specs with `None`).
    pub fn is_empty(&self) -> bool {
        self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.stall_rate == 0.0
            && self.kills.is_empty()
            && self.link_stalls.is_empty()
            && self.router_stalls.is_empty()
    }
}

/// Destination pattern of the fuzz workload stream, drawn alongside the
/// topology so lockstep coverage spans the full scenario space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FuzzTraffic {
    /// Uniformly random destinations (self-sends exercise loopback).
    Uniform,
    /// A `fraction` of traffic aims at one compute node.
    Hotspot {
        /// The congested compute node.
        target: usize,
        /// Fraction of messages aimed at it.
        fraction: f64,
    },
    /// Matrix-transpose permutation (index reversal off square counts).
    Transpose,
    /// Two-state MMPP burst gating in front of uniform destinations.
    Bursty {
        /// Per-cycle ON -> OFF probability.
        on_off: f64,
        /// Per-cycle OFF -> ON probability.
        off_on: f64,
    },
}

/// One randomly drawn differential-test case. All fields are public and
/// plain data so failing cases can be shrunk and replayed literally.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzScenario {
    /// Seed for the workload and fault streams.
    pub seed: u64,
    /// The interconnect under test (cube, mesh, fat tree, or dragonfly).
    pub topology: Topology,
    /// Destination pattern of the workload stream.
    pub traffic: FuzzTraffic,
    /// Virtual channels per link (even, ≥ 2).
    pub link_vcs: usize,
    /// Flit capacity of each VC buffer.
    pub vc_buffer_capacity: usize,
    /// Flit capacity of the injection buffer.
    pub injection_buffer_capacity: usize,
    /// Trace ring capacity on the optimized engine (`0` = tracing off);
    /// exercised because tracing must never perturb behavior.
    pub trace_capacity: usize,
    /// Per-node per-cycle injection probability.
    pub rate: f64,
    /// Minimum message length in flits (≥ 1).
    pub min_length: u32,
    /// Maximum message length in flits (≥ `min_length`).
    pub max_length: u32,
    /// Cycles of active injection before the drain phase.
    pub cycles: u64,
    /// Optional fault plan.
    pub fault: Option<FaultSpec>,
}

impl FuzzScenario {
    /// Draws a scenario deterministically from `seed`. The same seed
    /// always yields the same scenario, so a failing seed is a complete
    /// bug report.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ SCENARIO_SALT);
        // Half the seeds stay on the paper's torus (the production
        // geometry); the rest split across the alternative topologies.
        // Shapes are kept small so the (intentionally slow) reference
        // engine stays fast.
        let topology = match rng.index(8) {
            0..=3 => {
                let dims = 1 + rng.index(3) as u32;
                let radix = match dims {
                    1 => 3 + rng.index(14), // rings of 3..=16 nodes
                    2 => 2 + rng.index(5),  // 4..=36 nodes
                    _ => 2 + rng.index(2),  // 8 or 27 nodes
                };
                Topology::cube(dims, radix)
            }
            4 | 5 => Topology::mesh(2 + rng.index(5), 2 + rng.index(5)),
            6 => Topology::fat_tree(2 + rng.index(2), 2 + rng.index(2) as u32),
            _ => Topology::dragonfly(2 + rng.index(2), 1 + rng.index(2)),
        };
        let compute = topology.compute_nodes();
        let traffic = match rng.index(4) {
            0 | 1 => FuzzTraffic::Uniform,
            2 => FuzzTraffic::Hotspot {
                target: rng.index(compute),
                fraction: rng.range_f64(0.2, 0.9),
            },
            _ => {
                if rng.chance(0.5) {
                    FuzzTraffic::Transpose
                } else {
                    FuzzTraffic::Bursty {
                        on_off: rng.range_f64(0.01, 0.2),
                        off_on: rng.range_f64(0.01, 0.2),
                    }
                }
            }
        };
        let link_vcs = if rng.chance(0.5) { 2 } else { 4 };
        let caps = [1usize, 2, 4, 8, 16];
        let vc_buffer_capacity = caps[rng.index(caps.len())];
        let injection_buffer_capacity = caps[rng.index(caps.len())];
        let trace_capacity = if rng.chance(0.3) { 32 } else { 0 };
        let rate = rng.range_f64(0.005, 0.08);
        let min_length = 1 + rng.index(4) as u32;
        let max_length = min_length + rng.index(12) as u32;
        let cycles = rng.range_u64(200, 1_200);
        let nodes = topology.nodes();
        let cube_dims = match &topology {
            Topology::Cube(t) => Some(t.dims()),
            _ => None,
        };
        let fault = if rng.chance(0.5) {
            let mut spec = FaultSpec {
                drop_rate: if rng.chance(0.6) {
                    rng.range_f64(0.0, 0.02)
                } else {
                    0.0
                },
                corrupt_rate: if rng.chance(0.4) {
                    rng.range_f64(0.0, 0.03)
                } else {
                    0.0
                },
                stall_rate: if rng.chance(0.4) {
                    rng.range_f64(0.0, 0.01)
                } else {
                    0.0
                },
                stall_window: rng.range_u64(8, 64),
                kills: Vec::new(),
                link_stalls: Vec::new(),
                router_stalls: Vec::new(),
            };
            // Scheduled link faults address links as (dim, direction)
            // pairs, which only exist on the torus; the probabilistic
            // drop/corrupt/stall faults above are port-generic and cover
            // every topology.
            if let Some(dims) = cube_dims {
                if rng.chance(0.25) {
                    spec.kills.push((
                        rng.range_u64(1, cycles),
                        rng.index(nodes),
                        rng.index(dims as usize) as u32,
                        if rng.chance(0.5) {
                            Direction::Plus
                        } else {
                            Direction::Minus
                        },
                    ));
                }
                if rng.chance(0.25) {
                    spec.link_stalls.push((
                        rng.range_u64(1, cycles),
                        rng.index(nodes),
                        rng.index(dims as usize) as u32,
                        if rng.chance(0.5) {
                            Direction::Plus
                        } else {
                            Direction::Minus
                        },
                        rng.range_u64(20, 200),
                    ));
                }
            }
            if rng.chance(0.25) {
                spec.router_stalls.push((
                    rng.range_u64(1, cycles),
                    rng.index(nodes),
                    rng.range_u64(20, 200),
                ));
            }
            if spec.is_empty() {
                None
            } else {
                Some(spec)
            }
        } else {
            None
        };
        Self {
            seed,
            topology,
            traffic,
            link_vcs,
            vc_buffer_capacity,
            injection_buffer_capacity,
            trace_capacity,
            rate,
            min_length,
            max_length,
            cycles,
            fault,
        }
    }

    /// The fabric configuration this scenario describes, with tracing on
    /// for the optimized engine only when `traced` is set (the reference
    /// engine has no trace buffer — tracing must not change behavior).
    fn config(&self, traced: bool) -> FabricConfig {
        FabricConfig {
            link_vcs: self.link_vcs,
            vc_buffer_capacity: self.vc_buffer_capacity,
            injection_buffer_capacity: self.injection_buffer_capacity,
            trace_capacity: if traced { self.trace_capacity } else { 0 },
        }
    }

    /// Number of compute nodes in the scenario's topology — the sources
    /// and destinations of the workload stream.
    pub fn nodes(&self) -> usize {
        self.topology.compute_nodes()
    }
}

/// An intentional, targeted perturbation of the injection stream seen by
/// the **reference** engine only — the hook used by tests to prove the
/// differential checker and shrinker actually fire (a checker that can
/// never fail verifies nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzMutation {
    /// Lengthen the `n`-th injected message by one flit on the reference
    /// side, desynchronizing flit counts.
    SkewLength(u64),
    /// Reroute the `n`-th injected message to a rotated destination on
    /// the reference side, desynchronizing delivery queues.
    SkewDestination(u64),
}

/// How a lockstep run diverged.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Cycle at which the divergence was detected (`None` for post-drain
    /// checks, which look at final state).
    pub cycle: Option<u64>,
    /// Human-readable description of the first failed check.
    pub what: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cycle {
            Some(cycle) => write!(f, "divergence at cycle {cycle}: {}", self.what),
            None => write!(f, "divergence after drain: {}", self.what),
        }
    }
}

/// Statistics from one clean lockstep run, so sweeps can report coverage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Messages injected into each engine.
    pub injected: u64,
    /// Messages delivered by each engine.
    pub delivered: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Messages still wedged in-flight at the end (dead links).
    pub wedged: u64,
    /// Total cycles stepped (active + drain).
    pub cycles: u64,
}

macro_rules! check_eq {
    ($cycle:expr, $a:expr, $b:expr, $what:expr) => {
        if $a != $b {
            return Err(Divergence {
                cycle: $cycle,
                what: format!("{}: optimized {:?} != reference {:?}", $what, $a, $b),
            });
        }
    };
}

/// Bound on the post-injection drain phase, matching the in-crate
/// equivalence tests: wedged traffic (dead links) stays put forever, so
/// the drain must be bounded.
const DRAIN_CYCLES: u64 = 20_000;

/// Runs a scenario's lockstep differential check. See the module docs
/// for the full list of properties verified.
///
/// # Errors
///
/// Returns the first [`Divergence`] between the two engines (or an
/// invariant violation on the optimized engine).
pub fn run_scenario(scenario: &FuzzScenario) -> Result<FuzzReport, Divergence> {
    run_scenario_mutated(scenario, None)
}

/// [`run_scenario`] with an optional intentional mutation applied to the
/// reference engine's injection stream — the test hook proving the
/// checker can fail. Production sweeps pass `None`.
///
/// # Errors
///
/// Returns the first [`Divergence`] detected (which, under a mutation,
/// is the expected outcome).
pub fn run_scenario_mutated(
    scenario: &FuzzScenario,
    mutation: Option<FuzzMutation>,
) -> Result<FuzzReport, Divergence> {
    let topology = scenario.topology.clone();
    let nodes = topology.compute_nodes();
    let mut opt: Fabric<u64> = match &scenario.fault {
        Some(spec) => Fabric::with_fault_plan(
            topology.clone(),
            scenario.config(true),
            spec.build(scenario.seed),
        ),
        None => Fabric::new(topology.clone(), scenario.config(true)),
    };
    let mut reference: ReferenceFabric<u64> = match &scenario.fault {
        Some(spec) => ReferenceFabric::with_fault_plan(
            topology,
            scenario.config(false),
            spec.build(scenario.seed),
        ),
        None => ReferenceFabric::new(topology, scenario.config(false)),
    };

    // Two mirrored workload streams (same seed) keep the injection
    // schedules identical without sharing a generator.
    let mut load = WorkloadStream::new(scenario);
    let mut mirror = WorkloadStream::new(scenario);
    let mut injected = 0u64;
    for cycle in 0..scenario.cycles {
        for m in load.pulse() {
            opt.inject(m);
        }
        for m in mirror.pulse() {
            let m = match mutation {
                Some(FuzzMutation::SkewLength(n)) if injected == n => {
                    Message::new(m.src, m.dst, m.length + 1, m.payload)
                }
                Some(FuzzMutation::SkewDestination(n)) if injected == n => {
                    let dst = NodeId((m.dst.0 + 1) % nodes);
                    Message::new(m.src, dst, m.length, m.payload)
                }
                _ => m,
            };
            injected += 1;
            reference.inject(m);
        }
        step_both(&mut opt, &mut reference, cycle)?;
        if cycle % 64 == 0 {
            check_eq!(Some(cycle), opt.stats(), reference.stats(), "stats");
        }
    }
    // Drain (bounded: traffic wedged behind killed links never leaves).
    let mut drained = 0u64;
    while drained < DRAIN_CYCLES && (opt.in_flight() > 0 || reference.in_flight() > 0) {
        step_both(&mut opt, &mut reference, scenario.cycles + drained)?;
        drained += 1;
    }

    check_eq!(None, opt.cycle(), reference.cycle(), "cycle count");
    check_eq!(None, opt.stats(), reference.stats(), "final stats");
    check_eq!(
        None,
        opt.total_injected(),
        reference.total_injected(),
        "total injected"
    );
    check_eq!(None, opt.in_flight(), reference.in_flight(), "in-flight");
    check_eq!(
        None,
        opt.buffered_flits(),
        reference.buffered_flits(),
        "buffered flits"
    );
    check_eq!(None, opt.activity(), reference.activity(), "activity");
    check_eq!(None, opt.fault_log(), reference.fault_log(), "fault log");

    // Delivery order/content equality, plus the optimized engine's
    // per-delivery breakdown telescoping invariant.
    let mut delivered = 0u64;
    for node in 0..nodes {
        loop {
            let a = opt.poll_delivery(NodeId(node));
            let b = reference.poll_delivery(NodeId(node));
            check_eq!(None, &a, &b, format!("delivery at node {node}"));
            let Some(delivery) = a else { break };
            delivered += 1;
            let parts = delivery.breakdown();
            if parts.total() != delivery.total_latency() {
                return Err(Divergence {
                    cycle: None,
                    what: format!(
                        "breakdown does not telescope: components sum {} != total latency {} \
                         (message {:?} -> {:?})",
                        parts.total(),
                        delivery.total_latency(),
                        delivery.message.src,
                        delivery.message.dst
                    ),
                });
            }
        }
    }

    // Cross-layer accounting invariants on the optimized engine.
    let stats = opt.stats();
    check_eq!(None, delivered, stats.delivered_messages, "delivered count");
    let breakdown = opt.breakdown();
    check_eq!(
        None,
        breakdown.deliveries,
        stats.delivered_messages,
        "breakdown delivery count"
    );
    check_eq!(
        None,
        breakdown.total(),
        stats.sum_total_latency,
        "breakdown aggregate vs stats latency sum"
    );
    let conserved = delivered + stats.dropped_messages + opt.in_flight() as u64;
    check_eq!(
        None,
        opt.total_injected(),
        conserved,
        "conservation (injected = delivered + dropped + in-flight)"
    );
    if let Some(trace) = opt.trace() {
        if trace.iter().count() > scenario.trace_capacity {
            return Err(Divergence {
                cycle: None,
                what: format!(
                    "trace ring holds {} events, above its capacity {}",
                    trace.iter().count(),
                    scenario.trace_capacity
                ),
            });
        }
    }

    Ok(FuzzReport {
        injected: opt.total_injected(),
        delivered,
        dropped: stats.dropped_messages,
        wedged: opt.in_flight() as u64,
        cycles: opt.cycle(),
    })
}

/// Draws a scenario from `seed` and runs its differential check.
///
/// # Errors
///
/// Returns the first [`Divergence`] between the two engines.
pub fn run_seed(seed: u64) -> Result<FuzzReport, Divergence> {
    run_scenario(&FuzzScenario::from_seed(seed))
}

fn step_both(
    opt: &mut Fabric<u64>,
    reference: &mut ReferenceFabric<u64>,
    cycle: u64,
) -> Result<(), Divergence> {
    let a = opt.step();
    let b = reference.step();
    if a.is_err() || b.is_err() {
        return Err(Divergence {
            cycle: Some(cycle),
            what: format!("step error: optimized {a:?}, reference {b:?}"),
        });
    }
    Ok(())
}

/// The open-loop injection schedule drawn from a scenario's seed. Both
/// engines consume an identical mirrored stream.
struct WorkloadStream {
    rng: DetRng,
    nodes: usize,
    rate: f64,
    min_length: u32,
    max_length: u32,
    traffic: FuzzTraffic,
    burst_on: Vec<bool>,
}

impl WorkloadStream {
    fn new(scenario: &FuzzScenario) -> Self {
        Self {
            rng: DetRng::new(scenario.seed),
            nodes: scenario.nodes(),
            rate: scenario.rate,
            min_length: scenario.min_length,
            max_length: scenario.max_length,
            traffic: scenario.traffic,
            burst_on: vec![false; scenario.nodes()],
        }
    }

    fn pulse(&mut self) -> Vec<Message<u64>> {
        let mut out = Vec::new();
        for src in 0..self.nodes {
            if let FuzzTraffic::Bursty { on_off, off_on } = self.traffic {
                let on = self.burst_on[src];
                let next = if on {
                    !self.rng.chance(on_off)
                } else {
                    self.rng.chance(off_on)
                };
                self.burst_on[src] = next;
                if !next {
                    continue;
                }
            }
            if self.rng.chance(self.rate) {
                let dst = self.destination(src);
                let length = self
                    .rng
                    .range_u64(u64::from(self.min_length), u64::from(self.max_length) + 1)
                    as u32;
                let payload = self.rng.next_u64();
                out.push(Message::new(NodeId(src), NodeId(dst), length, payload));
            }
        }
        out
    }

    fn destination(&mut self, src: usize) -> usize {
        match self.traffic {
            FuzzTraffic::Uniform | FuzzTraffic::Bursty { .. } => self.rng.index(self.nodes),
            FuzzTraffic::Hotspot { target, fraction } => {
                if self.rng.chance(fraction) {
                    target
                } else {
                    self.rng.index(self.nodes)
                }
            }
            FuzzTraffic::Transpose => {
                let k = (self.nodes as f64).sqrt() as usize;
                if k * k == self.nodes {
                    (src % k) * k + src / k
                } else {
                    self.nodes - 1 - src
                }
            }
        }
    }
}

/// Result of shrinking a failing scenario to a (locally) minimal one.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimal failing scenario found.
    pub scenario: FuzzScenario,
    /// Its divergence.
    pub divergence: Divergence,
    /// Candidate scenarios tried during shrinking.
    pub attempts: u32,
}

impl ShrinkOutcome {
    /// Renders a ready-to-paste `#[test]` function that replays the
    /// minimal failing scenario (paste into any crate that depends on
    /// `commloc-net` with the `reference-engine` feature).
    pub fn repro_test(&self) -> String {
        let s = &self.scenario;
        let fault = match &s.fault {
            None => "None".to_owned(),
            Some(f) => format!(
                "Some(FaultSpec {{\n            drop_rate: {:?},\n            corrupt_rate: {:?},\n            \
                 stall_rate: {:?},\n            stall_window: {},\n            kills: vec!{:?},\n            \
                 link_stalls: vec!{:?},\n            router_stalls: vec!{:?},\n        }})",
                f.drop_rate,
                f.corrupt_rate,
                f.stall_rate,
                f.stall_window,
                f.kills,
                f.link_stalls,
                f.router_stalls
            ),
        };
        format!(
            "#[test]\nfn fuzz_repro_seed_{seed}() {{\n    use commloc_net::fuzz::{{run_scenario, FaultSpec, FuzzScenario, FuzzTraffic}};\n    \
             use commloc_net::{{Direction, Topology}};\n    let _ = &Direction::Plus; // used by fault literals\n    \
             let scenario = FuzzScenario {{\n        seed: {seed},\n        topology: {topo},\n        traffic: {traffic},\n        \
             link_vcs: {vcs},\n        vc_buffer_capacity: {vcap},\n        injection_buffer_capacity: {icap},\n        \
             trace_capacity: {tcap},\n        rate: {rate:?},\n        min_length: {minl},\n        max_length: {maxl},\n        \
             cycles: {cycles},\n        fault: {fault},\n    }};\n    \
             run_scenario(&scenario).expect(\"Fabric and ReferenceFabric must agree\");\n}}\n",
            seed = s.seed,
            topo = topology_expr(&s.topology),
            traffic = traffic_expr(&s.traffic),
            vcs = s.link_vcs,
            vcap = s.vc_buffer_capacity,
            icap = s.injection_buffer_capacity,
            tcap = s.trace_capacity,
            rate = s.rate,
            minl = s.min_length,
            maxl = s.max_length,
            cycles = s.cycles,
            fault = fault,
        )
    }
}

/// Renders a topology as the constructor expression that recreates it,
/// for ready-to-paste repro tests.
fn topology_expr(t: &Topology) -> String {
    match t {
        Topology::Cube(c) => format!("Topology::cube({}, {})", c.dims(), c.radix()),
        Topology::Mesh(m) => {
            let (x, y) = m.shape();
            format!("Topology::mesh({x}, {y})")
        }
        Topology::FatTree(f) => format!("Topology::fat_tree({}, {})", f.arity(), f.levels()),
        Topology::Dragonfly(d) => format!(
            "Topology::dragonfly({}, {})",
            d.routers_per_group(),
            d.globals_per_router()
        ),
    }
}

/// Renders a traffic pattern as a literal expression.
fn traffic_expr(t: &FuzzTraffic) -> String {
    match t {
        FuzzTraffic::Uniform => "FuzzTraffic::Uniform".to_owned(),
        FuzzTraffic::Hotspot { target, fraction } => {
            format!("FuzzTraffic::Hotspot {{ target: {target}, fraction: {fraction:?} }}")
        }
        FuzzTraffic::Transpose => "FuzzTraffic::Transpose".to_owned(),
        FuzzTraffic::Bursty { on_off, off_on } => {
            format!("FuzzTraffic::Bursty {{ on_off: {on_off:?}, off_on: {off_on:?} }}")
        }
    }
}

/// Greedily shrinks a failing scenario: each pass tries a fixed set of
/// reductions (halve the cycle budget, halve the injection rate, drop
/// the fault plan, shorten messages, remove a torus dimension, shrink
/// the radix, shallow the buffers, disable tracing) and keeps any that
/// still fail, looping to a fixed point.
///
/// The `mutation`, if any, is held constant across candidates — it is
/// part of the failure being reproduced.
///
/// Returns `None` if `scenario` does not actually fail.
pub fn shrink(scenario: &FuzzScenario, mutation: Option<FuzzMutation>) -> Option<ShrinkOutcome> {
    let (scenario, divergence, attempts) = shrink_with(
        scenario,
        |s| run_scenario_mutated(s, mutation).err(),
        reductions,
    )?;
    Some(ShrinkOutcome {
        scenario,
        divergence,
        attempts,
    })
}

/// The greedy shrinking loop behind [`shrink`], generic over the scenario
/// and divergence types so the machine-level fuzzer in `commloc-sim` can
/// reuse it with its own scenario space.
///
/// `fails` returns `Some(divergence)` when a candidate still exhibits the
/// failure; `reduce` enumerates candidate single-step reductions, most
/// aggressive first. Each pass keeps the first reduction that still fails
/// and loops to a fixed point, with a hard cap on attempts so shrinking
/// is best-effort, never a hang.
///
/// Returns `None` if `scenario` does not actually fail.
pub fn shrink_with<S: Clone, D>(
    scenario: &S,
    mut fails: impl FnMut(&S) -> Option<D>,
    reduce: impl Fn(&S) -> Vec<S>,
) -> Option<(S, D, u32)> {
    let mut best = scenario.clone();
    let mut divergence = fails(&best)?;
    let mut attempts = 0u32;
    loop {
        let mut progressed = false;
        for candidate in reduce(&best) {
            attempts += 1;
            if let Some(d) = fails(&candidate) {
                best = candidate;
                divergence = d;
                progressed = true;
                break;
            }
            if attempts >= 400 {
                progressed = false;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    Some((best, divergence, attempts))
}

/// Family-preserving single-step shrinks of a topology (a smaller shape
/// of the same kind; cross-family jumps rarely reproduce a failure).
fn shrink_topology(t: &Topology) -> Vec<Topology> {
    let mut out = Vec::new();
    match t {
        Topology::Cube(torus) => {
            if torus.dims() > 1 {
                out.push(Topology::cube(torus.dims() - 1, torus.radix()));
            }
            if torus.radix() > 2 {
                out.push(Topology::cube(torus.dims(), torus.radix() - 1));
            }
        }
        Topology::Mesh(m) => {
            let (x, y) = m.shape();
            if x > 2 {
                out.push(Topology::mesh(x - 1, y));
            }
            if y > 2 {
                out.push(Topology::mesh(x, y - 1));
            }
        }
        Topology::FatTree(f) => {
            if f.levels() > 1 {
                out.push(Topology::fat_tree(f.arity(), f.levels() - 1));
            }
            if f.arity() > 2 {
                out.push(Topology::fat_tree(f.arity() - 1, f.levels()));
            }
        }
        Topology::Dragonfly(d) => {
            if d.globals_per_router() > 1 {
                out.push(Topology::dragonfly(
                    d.routers_per_group(),
                    d.globals_per_router() - 1,
                ));
            }
            if d.routers_per_group() > 2 {
                out.push(Topology::dragonfly(
                    d.routers_per_group() - 1,
                    d.globals_per_router(),
                ));
            }
        }
    }
    out
}

/// Candidate single-step reductions of a scenario, most aggressive first.
fn reductions(s: &FuzzScenario) -> Vec<FuzzScenario> {
    let mut out = Vec::new();
    if s.cycles > 8 {
        let mut c = s.clone();
        c.cycles = (s.cycles / 2).max(8);
        out.push(c);
    }
    if s.fault.is_some() {
        let mut c = s.clone();
        c.fault = None;
        out.push(c);
    }
    if s.rate > 0.004 {
        let mut c = s.clone();
        c.rate = (s.rate * 0.5).max(0.002);
        out.push(c);
    }
    if s.traffic != FuzzTraffic::Uniform {
        let mut c = s.clone();
        c.traffic = FuzzTraffic::Uniform;
        out.push(c);
    }
    for smaller in shrink_topology(&s.topology) {
        let mut c = s.clone();
        // Clamp workload fields that index into the node space.
        if let FuzzTraffic::Hotspot { target, fraction } = c.traffic {
            c.traffic = FuzzTraffic::Hotspot {
                target: target.min(smaller.compute_nodes() - 1),
                fraction,
            };
        }
        c.topology = smaller;
        out.push(c);
    }
    if s.max_length > s.min_length {
        let mut c = s.clone();
        c.max_length = s.min_length;
        out.push(c);
    }
    if s.min_length > 1 {
        let mut c = s.clone();
        c.min_length = 1;
        c.max_length = s.max_length.clamp(1, 4);
        out.push(c);
    }
    if s.link_vcs > 2 {
        let mut c = s.clone();
        c.link_vcs = 2;
        out.push(c);
    }
    if s.vc_buffer_capacity > 1 {
        let mut c = s.clone();
        c.vc_buffer_capacity = s.vc_buffer_capacity / 2;
        out.push(c);
    }
    if s.injection_buffer_capacity > 1 {
        let mut c = s.clone();
        c.injection_buffer_capacity = s.injection_buffer_capacity / 2;
        out.push(c);
    }
    if s.trace_capacity > 0 {
        let mut c = s.clone();
        c.trace_capacity = 0;
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_generation_is_deterministic_and_valid() {
        let mut families = std::collections::BTreeSet::new();
        let mut traffics = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            let a = FuzzScenario::from_seed(seed);
            let b = FuzzScenario::from_seed(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            families.insert(a.topology.family());
            traffics.insert(match a.traffic {
                FuzzTraffic::Uniform => "uniform",
                FuzzTraffic::Hotspot { target, .. } => {
                    assert!(target < a.nodes(), "seed {seed}");
                    "hotspot"
                }
                FuzzTraffic::Transpose => "transpose",
                FuzzTraffic::Bursty { .. } => "bursty",
            });
            assert!(a.nodes() >= 2 && a.nodes() <= 64, "seed {seed}");
            assert!(a.link_vcs == 2 || a.link_vcs == 4);
            assert!(a.vc_buffer_capacity >= 1);
            assert!(a.injection_buffer_capacity >= 1);
            assert!(a.min_length >= 1 && a.max_length >= a.min_length);
            assert!(a.cycles >= 200 && a.cycles < 1_200);
            if let Some(f) = &a.fault {
                assert!(!f.is_empty());
                if !matches!(a.topology, Topology::Cube(_)) {
                    assert!(
                        f.kills.is_empty() && f.link_stalls.is_empty(),
                        "seed {seed}: scheduled (dim, dir) faults on {}",
                        a.topology.canonical()
                    );
                }
            }
        }
        // 200 seeds must cover the whole topology x traffic grid.
        assert_eq!(families.len(), 4, "families drawn: {families:?}");
        assert_eq!(traffics.len(), 4, "traffics drawn: {traffics:?}");
    }

    #[test]
    fn fuzz_sweep_short() {
        // A bounded in-test sweep; CI runs a much larger range via
        // `commloc fuzz`. Any divergence is shrunk and printed as a
        // ready-to-paste repro.
        for seed in 0..24u64 {
            let scenario = FuzzScenario::from_seed(seed);
            if let Err(d) = run_scenario(&scenario) {
                let shrunk = shrink(&scenario, None).expect("failure must reproduce");
                panic!(
                    "seed {seed} diverged: {d}\nminimal repro:\n{}",
                    shrunk.repro_test()
                );
            }
        }
    }

    #[test]
    fn mutation_trips_the_checker() {
        // An intentional single-message perturbation of the reference
        // stream must be caught — on stats, deliveries, or conservation.
        let scenario = FuzzScenario::from_seed(1);
        run_scenario(&scenario).expect("unmutated scenario must pass");
        let err = run_scenario_mutated(&scenario, Some(FuzzMutation::SkewLength(3)))
            .expect_err("length skew must diverge");
        assert!(!err.what.is_empty());
        let err = run_scenario_mutated(&scenario, Some(FuzzMutation::SkewDestination(0)))
            .expect_err("destination skew must diverge");
        assert!(!err.what.is_empty());
    }

    #[test]
    fn shrinker_minimizes_and_prints_repro() {
        let scenario = FuzzScenario::from_seed(1);
        let mutation = Some(FuzzMutation::SkewLength(0));
        let outcome = shrink(&scenario, mutation).expect("mutated scenario fails");
        // The minimal scenario must still fail and be no larger than the
        // original along the shrink axes.
        assert!(run_scenario_mutated(&outcome.scenario, mutation).is_err());
        assert!(outcome.scenario.cycles <= scenario.cycles);
        assert!(outcome.scenario.rate <= scenario.rate);
        let repro = outcome.repro_test();
        assert!(repro.contains("#[test]"), "{repro}");
        assert!(repro.contains("FuzzScenario"), "{repro}");
        assert!(repro.contains("seed: 1"), "{repro}");
    }

    #[test]
    fn shrink_returns_none_for_passing_scenario() {
        let scenario = FuzzScenario::from_seed(2);
        assert!(shrink(&scenario, None).is_none());
    }

    #[test]
    fn report_accounts_for_every_message() {
        let report = run_seed(5).expect("seed 5 clean");
        assert_eq!(
            report.injected,
            report.delivered + report.dropped + report.wedged
        );
        assert!(report.cycles > 0);
    }
}
