//! Ordering and fairness properties of the fabric under load.
//!
//! The coherence protocol built on top of this network relies on
//! point-to-point FIFO delivery (e.g. a ReadReply must not be overtaken
//! by a later Invalidate from the same home node). Deterministic e-cube
//! routing with per-pair-fixed virtual-channel classes guarantees it;
//! these tests enforce that guarantee under heavy, adversarial load.

use commloc_net::{DetRng, Fabric, FabricConfig, Message, NodeId, Torus};

/// Background load plus a monitored stream: the monitored pair's
/// sequence numbers must arrive strictly in order.
fn check_pair_fifo(
    dims: u32,
    radix: usize,
    src: usize,
    dst: usize,
    background: &[(usize, usize, u32)],
) {
    let torus = Torus::new(dims, radix);
    let n = torus.nodes();
    let (src, dst) = (NodeId(src % n), NodeId(dst % n));
    let mut fabric: Fabric<(bool, u32)> = Fabric::new(torus, FabricConfig::default());
    let mut monitored = 0u32;
    for (i, &(a, b, len)) in background.iter().enumerate() {
        // Interleave monitored messages with background ones.
        if i % 3 == 0 && src != dst {
            fabric.inject(Message::new(
                src,
                dst,
                4 + (monitored % 17),
                (true, monitored),
            ));
            monitored += 1;
        }
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        fabric.inject(Message::new(a, b, len, (false, 0)));
    }
    assert!(
        fabric.run_until_idle(5_000_000).unwrap(),
        "fabric did not drain"
    );
    let mut expected = 0u32;
    let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
    for node in nodes {
        while let Some(d) = fabric.poll_delivery(node) {
            let (is_monitored, seq) = d.message.payload;
            if is_monitored && d.message.src == src && d.message.dst == dst {
                assert_eq!(seq, expected, "monitored stream reordered");
                expected += 1;
            }
        }
    }
    assert_eq!(expected, monitored, "monitored messages lost");
}

/// Randomized sweep over topologies, monitored pairs, and background
/// loads — deterministic (seeded) so failures replay exactly.
#[test]
fn point_to_point_fifo_under_load() {
    let mut rng = DetRng::new(0x0f1f0);
    for _ in 0..16 {
        let dims = 1 + rng.index(2) as u32;
        let radix = 3 + rng.index(6);
        let src = rng.index(64);
        let dst = rng.index(64);
        let count = 10 + rng.index(110);
        let background: Vec<(usize, usize, u32)> = (0..count)
            .map(|_| (rng.index(64), rng.index(64), 1 + rng.index(25) as u32))
            .collect();
        check_pair_fifo(dims, radix, src, dst, &background);
    }
}

#[test]
fn fifo_on_wraparound_path() {
    // The monitored pair's route crosses datelines in both dimensions.
    let background: Vec<(usize, usize, u32)> =
        (0..100).map(|i| (i % 64, (i * 13 + 5) % 64, 12)).collect();
    check_pair_fifo(2, 8, 54, 9, &background); // (6,6) -> (1,1): wraps twice
}

#[test]
fn no_starvation_under_sustained_cross_traffic() {
    // Two crossing heavy flows share a column; both must finish in
    // bounded time (round-robin arbitration prevents starvation).
    let torus = Torus::new(2, 8);
    let mut fabric: Fabric<u8> = Fabric::new(torus.clone(), FabricConfig::default());
    for _ in 0..50 {
        fabric.inject(Message::new(
            torus.node_at(&[0, 0]),
            torus.node_at(&[0, 4]),
            12,
            1,
        ));
        fabric.inject(Message::new(
            torus.node_at(&[0, 1]),
            torus.node_at(&[0, 5]),
            12,
            2,
        ));
    }
    assert!(fabric.run_until_idle(200_000).unwrap());
    let s = fabric.stats();
    assert_eq!(s.delivered_messages, 100);
}

#[test]
fn utilization_matches_eq10_under_uniform_load() {
    // Eq. 10: rho = r_m * B * k_d / 2. Drive the fabric open-loop with
    // uniform random traffic at a low rate and compare the measured mean
    // channel utilization with the analytical value.
    use commloc_net::traffic::{BernoulliTraffic, TrafficPattern};
    let mut fabric: Fabric<()> = Fabric::new(Torus::new(2, 8), FabricConfig::default());
    let rate = 0.008;
    let b = 12u32;
    let mut traffic = BernoulliTraffic::new(64, TrafficPattern::UniformRandom, rate, b, 99);
    for _ in 0..40_000 {
        traffic.pulse(&mut fabric);
        fabric.step().unwrap();
    }
    let s = fabric.stats();
    let measured_rate = s.injected_messages as f64 / (s.cycles as f64 * 64.0);
    let k_d = s.avg_distance() / 2.0;
    let expected_rho = measured_rate * f64::from(b) * k_d / 2.0;
    let measured_rho = s.channel_utilization();
    assert!(
        (measured_rho - expected_rho).abs() / expected_rho < 0.1,
        "rho measured {measured_rho} vs Eq. 10 {expected_rho}"
    );
}

#[test]
fn unloaded_per_hop_latency_is_one_cycle() {
    // Single messages at a time: T_h must be exactly the base switch
    // delay of one network cycle at any distance.
    let torus = Torus::new(2, 8);
    let mut fabric: Fabric<()> = Fabric::new(torus.clone(), FabricConfig::default());
    for dst in [1usize, 9, 36, 27] {
        fabric.inject(Message::new(NodeId(0), NodeId(dst), 12, ()));
        assert!(fabric.run_until_idle(10_000).unwrap());
    }
    assert!((fabric.stats().avg_per_hop_latency() - 1.0).abs() < 1e-9);
}
