//! Figure 3 — application message curves.
//!
//! The paper plots average inter-message injection time `t_m` against
//! average message latency `T_m` measured across the mapping suite, for
//! one, two, and four hardware contexts, and observes a linear
//! relationship whose slope roughly doubles with the context count
//! (slightly less in practice, because the effective critical path `c`
//! grows — measured 15% larger at four contexts).
//!
//! This bench regenerates the measured curves from the cycle-level
//! simulator, fits each line, and compares slopes against `s = p*g/c`.

use commloc_bench::{fit_message_curve, time_it, validation_runs};
use std::hint::black_box;

fn reproduce() {
    println!("\n=== Figure 3: application message curves (t_m vs T_m) ===");
    let mut slopes = Vec::new();
    for contexts in [1usize, 2, 4] {
        let runs = validation_runs(contexts);
        println!("\n-- {contexts} context(s) --");
        println!("{:<16} {:>6} {:>8} {:>8}", "mapping", "d", "t_m", "T_m");
        let mut g_avg = 0.0;
        for run in &runs {
            println!(
                "{:<16} {:>6.2} {:>8.1} {:>8.1}",
                run.name,
                run.measured.distance,
                run.measured.message_interval,
                run.measured.message_latency
            );
            g_avg += run.measured.messages_per_transaction;
        }
        g_avg /= runs.len() as f64;
        let fit = fit_message_curve(&runs).expect("non-degenerate validation suite");
        let s_nominal = contexts as f64 * g_avg / 2.0;
        println!(
            "fitted: T_m = {:.2} * t_m {:+.1}   (R^2 = {:.3}; nominal s = p*g/c = {:.2})",
            fit.slope, fit.intercept, fit.r_squared, s_nominal
        );
        slopes.push(fit.slope);
    }
    println!(
        "\nslope ratios: p2/p1 = {:.2}, p4/p1 = {:.2}  (paper: roughly 2 and 4, \
         slightly less in practice)",
        slopes[1] / slopes[0],
        slopes[2] / slopes[0]
    );
}

fn main() {
    reproduce();
    // Timing target: a short burst of the underlying simulation.
    time_it("fig3/short_sim_window", 10, || {
        let cfg = commloc_sim::SimConfig::default();
        let mapping = commloc_sim::Mapping::identity(64);
        let m = commloc_sim::run_experiment(&cfg, &mapping, 500, 1_500).expect("fault-free run");
        black_box(m.message_rate)
    });
}
