//! Machine-level engine performance harness.
//!
//! Measures the full-system simulator's throughput in **simulated
//! network cycles per wall-clock second** under the active-node engine,
//! compares it against the retained exhaustive reference stepping mode
//! (`Machine::new_reference` — the golden model the equivalence tests and
//! `commloc fuzz --machine` check bit-for-bit), and writes the record to
//! `BENCH_machine.json` at the repository root.
//!
//! Scenario mix: dense conformance-figure workloads where the active set
//! stays full (the engine must not regress — every node really is busy
//! every boundary), and idle-heavy fault scenarios where the wins live:
//! retry-backoff gaps the engine fast-forwards, and a wedged machine
//! whose only future event is the watchdog trip horizon.
//!
//! Regression gate: if a committed `BENCH_machine.json` exists and the
//! environment sets `COMMLOC_PERF_ENFORCE=1`, the harness exits non-zero
//! when any scenario's cycles/sec drops more than 50% below the committed
//! figure (looser than the fabric bench's 20% — full-machine wall-clock
//! varies much more run to run, and the engine's failure modes all cost
//! well over 2x somewhere).
//!
//! Run with: `cargo bench --bench machine`

use commloc_mem::MemConfig;
use commloc_net::{FaultConfig, FaultPlan};
use commloc_sim::{Machine, Mapping, MigrationSpec, SimConfig};
use std::path::PathBuf;

struct Scenario {
    name: &'static str,
    config: SimConfig,
    mapping: Mapping,
    /// Migration policy spec, built fresh per engine (`None` = static
    /// machine without the resilience layer).
    migration: Option<MigrationSpec>,
    /// Network-cycle run bound; fault scenarios may trip the watchdog
    /// earlier (identically on both engines).
    cycles: u64,
}

struct Outcome {
    name: &'static str,
    cycles: u64,
    wall_secs: f64,
    cycles_per_sec: f64,
    completions: u64,
    fast_forwarded: u64,
    reference_cycles_per_sec: f64,
    speedup: f64,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            // Figure 3 regime: single-context dense traffic on the
            // paper's 8x8 machine; the active set stays essentially full,
            // so this gates the engine's bookkeeping overhead.
            name: "fig3_dense_identity_8x8",
            config: SimConfig::default(),
            mapping: Mapping::identity(64),
            migration: None,
            cycles: 30_000,
        },
        Scenario {
            // Figure 5 regime: multithreaded (2 contexts) with the random
            // mapping — the conformance suite's heaviest dense scenario.
            name: "fig5_dense_random_8x8",
            config: SimConfig {
                contexts: 2,
                ..SimConfig::default()
            },
            mapping: Mapping::random(64, 1992),
            migration: None,
            cycles: 30_000,
        },
        Scenario {
            // Heavy drops with long retry timeouts carve quiescent gaps
            // (all processors blocked until a retry deadline) that the
            // engine fast-forwards in O(1) per gap.
            name: "retry_backoff_gaps_4x4",
            config: SimConfig {
                dims: 2,
                radix: 4,
                mem: MemConfig {
                    timeout_cycles: 8_000,
                    max_retries: 30,
                    ..MemConfig::default()
                },
                watchdog_cycles: 60_000,
                fault_plan: Some(FaultPlan::new(23).with_config(FaultConfig {
                    drop_rate: 0.05,
                    ..FaultConfig::default()
                })),
                ..SimConfig::default()
            },
            mapping: Mapping::identity(16),
            migration: None,
            cycles: 120_000,
        },
        Scenario {
            // Unretried drops wedge every thread; once the machine is
            // fully quiescent the only future event is the watchdog trip,
            // a few hundred thousand cycles out — one fast-forward jump
            // for the active engine, a grind for the reference one.
            name: "wedged_watchdog_horizon_4x4",
            config: SimConfig {
                dims: 2,
                radix: 4,
                mem: MemConfig {
                    timeout_cycles: 0,
                    ..MemConfig::default()
                },
                watchdog_cycles: 300_000,
                fault_plan: Some(FaultPlan::new(41).with_config(FaultConfig {
                    drop_rate: 0.05,
                    ..FaultConfig::default()
                })),
                ..SimConfig::default()
            },
            mapping: Mapping::identity(16),
            migration: None,
            cycles: 400_000,
        },
        Scenario {
            // Resilience regime: unretried drops continuously wedge
            // threads while the work-stealing policy migrates them away
            // — gates the policy layer's boundary scan, park/adopt
            // machinery, and the extra fast-forward clamps it installs.
            name: "resilience_migration_4x4",
            config: SimConfig {
                dims: 2,
                radix: 4,
                mem: MemConfig {
                    timeout_cycles: 0,
                    ..MemConfig::default()
                },
                watchdog_cycles: 100_000,
                fault_plan: Some(FaultPlan::new(41).with_config(FaultConfig {
                    drop_rate: 0.05,
                    ..FaultConfig::default()
                })),
                ..SimConfig::default()
            },
            mapping: Mapping::identity(16),
            migration: Some(MigrationSpec {
                stealing: true,
                steal_latency: 300,
                wedge_threshold: 2_000,
                max_migrations: 10_000,
            }),
            cycles: 120_000,
        },
    ]
}

/// Runs one engine over the scenario; returns wall seconds plus the
/// observables the harness cross-checks between engines.
fn run_engine(s: &Scenario, reference: bool) -> (f64, u64, u64, u64) {
    let mut machine = match (reference, s.migration) {
        (true, Some(spec)) => {
            Machine::new_reference_with_policy(&s.config, &s.mapping, spec.build())
        }
        (true, None) => Machine::new_reference(&s.config, &s.mapping),
        (false, Some(spec)) => Machine::with_policy(&s.config, &s.mapping, spec.build()),
        (false, None) => Machine::new(&s.config, &s.mapping),
    };
    let start = std::time::Instant::now();
    // Watchdog trips are expected in the fault scenarios; the engines
    // must agree on the outcome either way (asserted by the caller via
    // net_cycle/completions — the full report equality lives in the
    // equivalence tests and fuzzer).
    let _ = machine.run_network_cycles(s.cycles);
    (
        start.elapsed().as_secs_f64(),
        machine.net_cycle(),
        machine.completions(),
        machine.fast_forwarded_cycles(),
    )
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn render_json(outcomes: &[Outcome]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"machine\",\n  \"unit\": \"simulated_network_cycles_per_sec\",\n  \"scenarios\": [\n",
    );
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cycles\": {}, \"wall_secs\": {:.3}, \
             \"cycles_per_sec\": {:.0}, \"completions\": {}, \"fast_forwarded_cycles\": {}, \
             \"reference_cycles_per_sec\": {:.0}, \"speedup_vs_reference\": {:.2}}}{}\n",
            o.name,
            o.cycles,
            o.wall_secs,
            o.cycles_per_sec,
            o.completions,
            o.fast_forwarded,
            o.reference_cycles_per_sec,
            o.speedup,
            if i + 1 < outcomes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"cycles_per_sec": <value>` for `name` out of a committed
/// baseline without a JSON dependency: scenario objects are one per line
/// in the format this harness writes.
fn baseline_cycles_per_sec(baseline: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = baseline.lines().find(|l| l.contains(&needle))?;
    let rest = line.split("\"cycles_per_sec\": ").nth(1)?;
    rest.split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let root = repo_root();
    let baseline_path = root.join("BENCH_machine.json");
    let baseline = std::fs::read_to_string(&baseline_path).ok();

    let mut outcomes = Vec::new();
    println!("=== Machine engine throughput (simulated network cycles / second) ===\n");
    for scenario in scenarios() {
        let (secs, net_cycles, completions, fast_forwarded) = run_engine(&scenario, false);
        let (ref_secs, ref_net_cycles, ref_completions, _) = run_engine(&scenario, true);
        assert_eq!(
            net_cycles, ref_net_cycles,
            "{}: engines disagree on elapsed cycles",
            scenario.name
        );
        assert_eq!(
            completions, ref_completions,
            "{}: engines disagree on completed transactions",
            scenario.name
        );
        let cycles_per_sec = net_cycles as f64 / secs;
        let reference_cycles_per_sec = net_cycles as f64 / ref_secs;
        let speedup = cycles_per_sec / reference_cycles_per_sec;
        println!(
            "{:<28} {:>12.0} cyc/s  (reference {:>10.0} cyc/s, speedup {:>6.1}x, \
             {} completions, {} cycles fast-forwarded)",
            scenario.name,
            cycles_per_sec,
            reference_cycles_per_sec,
            speedup,
            completions,
            fast_forwarded
        );
        outcomes.push(Outcome {
            name: scenario.name,
            cycles: net_cycles,
            wall_secs: secs,
            cycles_per_sec,
            completions,
            fast_forwarded,
            reference_cycles_per_sec,
            speedup,
        });
    }

    let mut regressed = Vec::new();
    if let Some(baseline) = &baseline {
        println!();
        for o in &outcomes {
            let Some(committed) = baseline_cycles_per_sec(baseline, o.name) else {
                continue;
            };
            let ratio = o.cycles_per_sec / committed;
            println!(
                "vs committed baseline: {:<28} {:>6.2}x ({:.0} -> {:.0} cyc/s)",
                o.name, ratio, committed, o.cycles_per_sec
            );
            // Half the committed throughput, not the fabric bench's 20%:
            // full-machine runs on shared CI hosts vary up to ~45% run to
            // run (the dense scenarios are memory-system bound), while
            // every failure mode this gate exists for — fast-forward not
            // firing, worklist bookkeeping blowing up — costs well over
            // 2x on at least one scenario.
            if ratio < 0.5 {
                regressed.push(format!(
                    "{}: {:.0} cyc/s is {:.0}% below the committed {:.0} cyc/s",
                    o.name,
                    o.cycles_per_sec,
                    (1.0 - ratio) * 100.0,
                    committed
                ));
            }
        }
    }

    std::fs::write(&baseline_path, render_json(&outcomes)).expect("write BENCH_machine.json");
    println!("\nwrote {}", baseline_path.display());

    if !regressed.is_empty() {
        eprintln!("\nperformance regression (>50% below committed baseline):");
        for r in &regressed {
            eprintln!("  {r}");
        }
        if std::env::var("COMMLOC_PERF_ENFORCE").as_deref() == Ok("1") {
            std::process::exit(1);
        }
        eprintln!("  (set COMMLOC_PERF_ENFORCE=1 to fail the run)");
    }
}
