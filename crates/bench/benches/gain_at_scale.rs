//! Measured locality gain vs. machine size — the cycle-level analogue
//! of Figure 7, run on the shard-parallel engine at sizes the
//! monolithic 8x8 validation machine cannot reach.
//!
//! For each torus size the harness runs the full-system simulator twice
//! — identity mapping (every torus-neighbour reference one hop) and
//! random mapping (distance per Eq. 17) — and reports the measured gain
//! as the ratio of per-processor transaction rates, exactly the
//! quantity [`commloc_model::expected_gain`] predicts. The model's
//! prediction at each size is printed alongside for the
//! model-versus-measurement comparison that EXPERIMENTS.md records.
//!
//! The largest default size, 320x320 = 102,400 nodes, is the paper's
//! N >= 10^5 regime: Figure 7's claim that locality is worth an
//! order of magnitude there is checked against a real simulation for
//! the first time in this repo, not just the closed-form model.
//!
//! Windows shrink as sizes grow (simulation cost scales with N); the
//! measured rates are steady-window averages after warm-up, and every
//! run uses the sharded engine (16 shards) — bit-exact with the
//! monolithic engine per the equivalence suite, so engine choice does
//! not affect the measurement.
//!
//! Run with: `cargo bench --bench gain_at_scale`. Set
//! `COMMLOC_GAIN_MAX_NODES` (e.g. 4096) to cap the size list for a
//! quick smoke run.

use commloc_model::{expected_gain, MachineConfig};
use commloc_sim::{default_jobs, run_sharded_experiment, Mapping, SimConfig};

const SHARDS: usize = 16;

/// `(radix, warmup, window)` — windows shrink with size to keep the
/// sweep tractable; each stays several transaction latencies long.
const SIZES: [(usize, u64, u64); 5] = [
    (32, 2_000, 6_000),
    (64, 1_500, 4_500),
    (128, 1_000, 3_000),
    (256, 800, 2_400),
    (320, 800, 2_000),
];

fn main() {
    let max_nodes: usize = std::env::var("COMMLOC_GAIN_MAX_NODES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(usize::MAX);
    let jobs = default_jobs();

    println!(
        "=== Measured locality gain vs machine size (identity / random mapping, \
         sharded engine, {SHARDS} shards, {jobs} job(s)) ===\n"
    );
    println!(
        "{:>7} {:>9} {:>8} {:>8} {:>11} {:>11} {:>9} {:>10}",
        "radix", "nodes", "d_ident", "d_rand", "rate_ident", "rate_rand", "gain", "model_gain"
    );
    for (radix, warmup, window) in SIZES {
        let nodes = radix * radix;
        if nodes > max_nodes {
            continue;
        }
        let config = SimConfig {
            dims: 2,
            radix,
            ..SimConfig::default()
        };
        let identity = run_sharded_experiment(
            &config,
            &Mapping::identity(nodes),
            SHARDS,
            jobs,
            warmup,
            window,
        )
        .expect("identity run must not stall");
        let random = run_sharded_experiment(
            &config,
            &Mapping::random(nodes, 1992),
            SHARDS,
            jobs,
            warmup,
            window,
        )
        .expect("random run must not stall");
        let gain = identity.transaction_rate / random.transaction_rate;
        let model = expected_gain(&MachineConfig::alewife().with_nodes(nodes as f64))
            .expect("model solvable")
            .gain;
        println!(
            "{radix:>7} {nodes:>9} {:>8.2} {:>8.2} {:>11.6} {:>11.6} {gain:>9.2} {model:>10.2}",
            identity.distance, random.distance, identity.transaction_rate, random.transaction_rate,
        );
    }
}
