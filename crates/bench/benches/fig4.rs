//! Figure 4 — average message rate vs. average communication distance:
//! simulation points against combined-model predictions.
//!
//! The paper reports model-predicted message rates "consistently within a
//! few percent of measured values". This bench runs the mapping suite on
//! the cycle-level simulator, calibrates the combined model per context
//! count (the paper's methodology: measured application parameters plus
//! the analytical network model), and prints measured vs. predicted
//! per-node message rates with their relative error.

use commloc_bench::{calibrated_model, pct_err, time_it, validation_runs};
use std::hint::black_box;

fn reproduce() {
    println!("\n=== Figure 4: message rate r_m vs distance d (sim vs model) ===");
    for contexts in [1usize, 2, 4] {
        let runs = validation_runs(contexts);
        let model = calibrated_model(contexts, &runs);
        println!("\n-- {contexts} context(s) --");
        println!(
            "{:<16} {:>6} {:>10} {:>10} {:>8}",
            "mapping", "d", "r_m (sim)", "r_m (mod)", "err%"
        );
        let mut worst: f64 = 0.0;
        for run in &runs {
            let predicted = model
                .solve(run.measured.distance)
                .map(|op| op.message_rate)
                .unwrap_or(f64::NAN);
            let err = pct_err(predicted, run.measured.message_rate);
            worst = worst.max(err.abs());
            println!(
                "{:<16} {:>6.2} {:>10.5} {:>10.5} {:>7.1}%",
                run.name, run.measured.distance, run.measured.message_rate, predicted, err
            );
        }
        println!("worst-case rate error: {worst:.1}% (paper: within a few percent)");
    }
}

fn main() {
    reproduce();
    // Timing target: the combined-model solve used for every point.
    let runs = validation_runs(1);
    let model = calibrated_model(1, &runs);
    time_it("fig4/combined_model_solve", 10_000, || {
        black_box(model.solve(black_box(4.06)).unwrap().message_rate)
    });
}
