//! Figure 6 — average per-hop latency `T_h` vs. machine size `N`.
//!
//! Solid curve: the Section 3 application (two contexts, random
//! communication patterns). Dashed curve: the same application with its
//! computation grain artificially increased tenfold. Both approach the
//! Eq. 16 limit `B*s/(2n)` (about 9.8 network cycles for `s = 3.26`,
//! `B = 12`, `n = 2`); the small-grain application reaches over eighty
//! percent of it with a few thousand processors.

use commloc_bench::time_it;
use commloc_model::{
    limiting_per_hop_latency, log_spaced_sizes, per_hop_latency_curve, MachineConfig,
};
use std::hint::black_box;

fn reproduce() {
    println!("\n=== Figure 6: per-hop latency T_h vs machine size N ===");
    let base = MachineConfig::alewife().with_contexts(2);
    let big_grain = base.with_grain(base.grain() * 10.0);
    let limit = limiting_per_hop_latency(&base);
    println!(
        "Eq. 16 limit: B*s/(2n) = {:.2} network cycles (paper: ~9.8 at s=3.26)\n",
        limit
    );
    let sizes = log_spaced_sizes(10.0, 1e6, 2);
    println!(
        "{:>10} {:>10} {:>14} {:>16}",
        "N", "d_random", "T_h (base)", "T_h (10x grain)"
    );
    for &n in &sizes {
        let b = per_hop_latency_curve(&base, &[n]).expect("solvable")[0];
        let g = per_hop_latency_curve(&big_grain, &[n]).expect("solvable")[0];
        println!(
            "{n:>10.0} {:>10.1} {:>14.2} {:>16.2}",
            b.distance, b.per_hop_latency, g.per_hop_latency
        );
    }
    // The headline observation: >80% of the limit by a few thousand nodes.
    let reach = commloc_model::size_reaching_fraction_of_limit(&base, &sizes, 0.8)
        .expect("solvable")
        .map(|n| format!("{n:.0}"))
        .unwrap_or_else(|| "not reached".into());
    println!("\nbase application reaches 80% of the limit at N = {reach} (paper: a few thousand)");
}

fn main() {
    reproduce();
    let cfg = MachineConfig::alewife().with_contexts(2);
    let sizes = log_spaced_sizes(10.0, 1e6, 2);
    time_it("fig6/per_hop_latency_curve", 1_000, || {
        black_box(per_hop_latency_curve(&cfg, black_box(&sizes)).unwrap())
    });
}
