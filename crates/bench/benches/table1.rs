//! Table 1 — impact of relative network speed on the expected gain from
//! exploiting physical locality (single-context application, 10^3 and
//! 10^6 processors).
//!
//! Paper values: 2.1 / 41.2 (2x faster, the base architecture),
//! 3.1 / 68.3 (same), 4.5 / 101.6 (2x slower), 5.9 / 134.3 (4x slower) —
//! slowing the network 8x raises the bounds roughly 3x. As in the
//! paper's closed-form development, the endpoint-channel extension is
//! disabled here (at the slow-network extremes it would dominate the
//! ideal mapping; see EXPERIMENTS.md).

use commloc_bench::time_it;
use commloc_model::{expected_gain, EndpointContention, MachineConfig};
use std::hint::black_box;

const PAPER: [(&str, f64, f64, f64); 4] = [
    ("2x faster", 1.0, 2.1, 41.2),
    ("same", 0.5, 3.1, 68.3),
    ("2x slower", 0.25, 4.5, 101.6),
    ("4x slower", 0.125, 5.9, 134.3),
];

fn reproduce() {
    println!("\n=== Table 1: expected gain vs relative network speed (p = 1) ===");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "net speed", "g(1e3)", "paper", "g(1e6)", "paper"
    );
    let base = MachineConfig::alewife()
        .with_contexts(1)
        .with_endpoint_contention(EndpointContention::Ignore);
    let mut first = (0.0, 0.0);
    let mut last = (0.0, 0.0);
    for (i, (label, factor, p3, p6)) in PAPER.iter().enumerate() {
        let cfg = base.scale_network_speed(*factor);
        let g3 = expected_gain(&cfg.with_nodes(1e3)).expect("solvable").gain;
        let g6 = expected_gain(&cfg.with_nodes(1e6)).expect("solvable").gain;
        println!("{label:<12} {g3:>10.1} {p3:>10.1} {g6:>10.1} {p6:>10.1}");
        if i == 0 {
            first = (g3, g6);
        }
        last = (g3, g6);
    }
    println!(
        "\n8x slowdown raises gains by {:.1}x / {:.1}x (paper: roughly 3x)",
        last.0 / first.0,
        last.1 / first.1
    );
}

fn main() {
    reproduce();
    let cfg = MachineConfig::alewife()
        .scale_network_speed(0.125)
        .with_nodes(1e6);
    time_it("table1/expected_gain_slow_net", 1_000, || {
        black_box(expected_gain(black_box(&cfg)).unwrap().gain)
    });
}
