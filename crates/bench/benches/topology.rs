//! Gain by topology — the cross-interconnect counterpart of Figure 7.
//!
//! For each pluggable fabric (torus, non-wrapping mesh, fat tree,
//! dragonfly) at the default 64-ish-node scale, runs the cycle-level
//! simulator under identity and random placement and pairs the measured
//! gain with the analytical prediction on the same topology profile
//! (`rho = r·B·d/C`, the flux-balance generalization of Eq. 10). The
//! timed section covers one mesh measurement window — the marginal cost
//! of a non-cube fabric over the torus fast path.

use commloc_bench::time_it;
use commloc_model::{expected_gain, MachineConfig};
use commloc_net::Topology;
use commloc_sim::{model_profile, run_experiment, Mapping, SimConfig};
use std::hint::black_box;

const WARMUP: u64 = 5_000;
const WINDOW: u64 = 15_000;
const SEED: u64 = 1992;

fn reproduce() {
    println!("\n=== Gain by topology: measured vs model, identity / random placement ===");
    let topologies = [
        Topology::cube(2, 8),
        Topology::mesh(8, 8),
        Topology::fat_tree(2, 6),
        Topology::dragonfly(4, 4),
    ];
    println!(
        "{:<16} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "topology", "nodes", "C/node", "d_random", "sim_gain", "model_gain"
    );
    for topology in &topologies {
        let config = SimConfig {
            topology: Some(topology.clone()),
            ..SimConfig::default()
        };
        let compute = topology.compute_nodes();
        let ident = run_experiment(&config, &Mapping::identity(compute), WARMUP, WINDOW)
            .expect("identity run");
        let random = run_experiment(&config, &Mapping::random(compute, SEED), WARMUP, WINDOW)
            .expect("random run");
        let profile = model_profile(topology).expect("profile");
        let predicted = expected_gain(&MachineConfig::alewife().with_topology_profile(profile))
            .expect("solvable");
        println!(
            "{:<16} {:>7} {:>7.2} {:>9.2} {:>9.2} {:>9.2}",
            topology.canonical(),
            compute,
            profile.channels_per_node,
            random.distance,
            ident.transaction_rate / random.transaction_rate,
            predicted.gain
        );
    }
}

fn main() {
    reproduce();
    let config = SimConfig {
        topology: Some(Topology::mesh(8, 8)),
        ..SimConfig::default()
    };
    let mapping = Mapping::random(64, SEED);
    time_it("topology/mesh8x8_random_20k_cycles", 3, || {
        black_box(run_experiment(black_box(&config), &mapping, WARMUP, WINDOW).unwrap())
    });
}
