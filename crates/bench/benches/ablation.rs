//! Ablation — which model extensions earn their keep?
//!
//! DESIGN.md calls out two modeling choices beyond the paper's core
//! equations: the endpoint-channel (processor↔network) contention term
//! (the paper's extension from [7]) and the M/G/1 residual-service-size
//! correction for the bimodal coherence-message mix. This bench runs the
//! cycle-level simulator once and evaluates model-prediction error under
//! all four on/off combinations, plus the network-dimension study of
//! Section 4.2's closing remark.

use commloc_bench::{fit_message_curve, pct_err, time_it, validation_runs, ValidationRun};
use commloc_model::{
    dimension_study, ApplicationModel, CombinedModel, EndpointContention, MachineConfig,
    NetworkModel, NodeModel, TorusGeometry, TransactionModel,
};
use std::hint::black_box;

/// Builds the calibrated model with explicit feature switches.
fn model_variant(
    contexts: usize,
    runs: &[ValidationRun],
    endpoint: EndpointContention,
    residual_correction: bool,
) -> CombinedModel {
    let fit = fit_message_curve(runs).expect("non-degenerate validation suite");
    let n = runs.len() as f64;
    let g: f64 = runs
        .iter()
        .map(|r| r.measured.messages_per_transaction)
        .sum::<f64>()
        / n;
    let b: f64 = runs
        .iter()
        .map(|r| r.measured.avg_message_size)
        .sum::<f64>()
        / n;
    let b_resid: f64 = runs
        .iter()
        .map(|r| r.measured.residual_message_size)
        .sum::<f64>()
        / n;
    let t_r: f64 = runs.iter().map(|r| r.measured.run_length).sum::<f64>() / n;
    let s = fit.slope.max(0.1);
    let offset = (-fit.intercept).max(t_r * 0.5);
    let c_eff = (contexts as f64 * g / s).max(1.0);
    let t_f = (c_eff * offset - t_r).max(0.0);
    let app = ApplicationModel::new(t_r, contexts as u32, 22.0).expect("valid");
    let txn = TransactionModel::new(c_eff, g.max(c_eff), t_f).expect("valid");
    let mut network = NetworkModel::new(TorusGeometry::new(2, 8.0).expect("valid"), b)
        .expect("valid")
        .with_endpoint_contention(endpoint);
    if residual_correction {
        network = network.with_contention_size(b_resid);
    }
    CombinedModel::new(NodeModel::new(app, txn), network)
}

fn mean_abs_rate_error(model: &CombinedModel, runs: &[ValidationRun]) -> f64 {
    let mut total = 0.0;
    for run in runs {
        let predicted = model
            .solve(run.measured.distance)
            .map(|op| op.message_rate)
            .unwrap_or(f64::NAN);
        total += pct_err(predicted, run.measured.message_rate).abs();
    }
    total / runs.len() as f64
}

fn reproduce() {
    println!("\n=== Ablation: model extensions vs simulator agreement ===");
    for contexts in [1usize, 2] {
        let runs = validation_runs(contexts);
        println!("\n-- {contexts} context(s): mean |rate error| across the mapping suite --");
        println!("{:<44} {:>10}", "variant", "mean |err|");
        let variants = [
            ("core equations only", EndpointContention::Ignore, false),
            (
                "+ endpoint channel (paper ext. [7])",
                EndpointContention::MD1,
                false,
            ),
            ("+ M/G/1 residual size", EndpointContention::Ignore, true),
            ("+ both (shipping default)", EndpointContention::MD1, true),
        ];
        for (name, endpoint, residual) in variants {
            let model = model_variant(contexts, &runs, endpoint, residual);
            let err = mean_abs_rate_error(&model, &runs);
            println!("{name:<44} {err:>9.1}%");
        }
    }

    println!("\n=== Section 4.2 closing remark: gain vs network dimension (N = 10^6) ===");
    println!(
        "{:>4} {:>8} {:>10} {:>10} {:>8}",
        "n", "k", "d_random", "T_h limit", "gain"
    );
    let cfg = MachineConfig::alewife().with_contexts(2).with_nodes(1e6);
    for point in dimension_study(&cfg, &[2, 3, 4, 5]).expect("solvable") {
        println!(
            "{:>4} {:>8.1} {:>10.1} {:>10.2} {:>8.1}",
            point.dimension,
            point.radix,
            point.random_distance,
            point.limiting_per_hop_latency,
            point.gain
        );
    }
}

fn main() {
    reproduce();
    let cfg = MachineConfig::alewife().with_contexts(2).with_nodes(1e6);
    time_it("ablation/dimension_study", 1_000, || {
        black_box(dimension_study(&cfg, black_box(&[2, 3, 4, 5])).unwrap())
    });
}
