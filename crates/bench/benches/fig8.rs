//! Figure 8 — inter-transaction issue time broken into its Eq. 18
//! components, for ideal and random mappings on a 1,000-processor
//! machine at one, two, and four contexts.
//!
//! The paper's observations: moving from ideal to random mappings, only
//! the variable message overhead grows (drastically), but because that
//! growth merely brings it on par with the fixed components, the net
//! impact on `t_t` is limited to about a factor of two; fixed transaction
//! overhead is roughly two-thirds of the total fixed component.

use commloc_bench::time_it;
use commloc_model::{
    EndpointContention, IssueTimeBreakdown, MachineConfig, IDEAL_MAPPING_DISTANCE,
};
use std::hint::black_box;

fn reproduce() {
    println!("\n=== Figure 8: t_t component breakdown at N = 1,000 ===");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "case", "var msg", "fix msg", "fix txn", "cpu", "total"
    );
    // The Eq. 18 decomposition, as in the paper's figure, without the
    // endpoint-channel extension (its small contribution is reported by
    // the combined model separately).
    let base = MachineConfig::alewife()
        .with_nodes(1000.0)
        .with_endpoint_contention(EndpointContention::Ignore);
    for p in [1u32, 2, 4] {
        let cfg = base.with_contexts(p);
        let model = cfg.to_combined_model().expect("valid config");
        let random_d = cfg.random_mapping_distance().expect("valid geometry");
        for (label, d) in [("ideal", IDEAL_MAPPING_DISTANCE), ("random", random_d)] {
            let op = model.solve(d).expect("solvable");
            let b = IssueTimeBreakdown::from_operating_point(&model, &op);
            println!(
                "p={p} {label:<9} {:>10.1} {:>10.1} {:>10.1} {:>8.1} {:>8.1}",
                b.variable_message,
                b.fixed_message,
                b.fixed_transaction,
                b.cpu,
                b.total()
            );
        }
        let ideal = model.solve(IDEAL_MAPPING_DISTANCE).expect("solvable");
        let random = model.solve(random_d).expect("solvable");
        let b = IssueTimeBreakdown::from_operating_point(&model, &ideal);
        println!(
            "      -> random/ideal t_t ratio: {:.2}; fixed-txn share of fixed: {:.0}%",
            random.issue_interval / ideal.issue_interval,
            b.fixed_transaction_share() * 100.0
        );
    }
}

fn main() {
    reproduce();
    let cfg = MachineConfig::alewife().with_nodes(1000.0);
    let model = cfg.to_combined_model().unwrap();
    time_it("fig8/breakdown", 10_000, || {
        let op = model.solve(black_box(15.8)).unwrap();
        black_box(IssueTimeBreakdown::from_operating_point(&model, &op).total())
    });
}
