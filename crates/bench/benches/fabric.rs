//! Fabric engine performance harness.
//!
//! Measures the active-set cycle engine's throughput in **simulated
//! network cycles per wall-clock second** across representative
//! scenarios, compares it against the retained naive `ReferenceFabric`
//! (the golden model the equivalence tests check bit-for-bit), and writes
//! the record to `BENCH_fabric.json` at the repository root.
//!
//! Regression gate: if a committed `BENCH_fabric.json` exists and the
//! environment sets `COMMLOC_PERF_ENFORCE=1`, the harness exits non-zero
//! when any scenario's cycles/sec drops more than 20% below the committed
//! figure. Scenario cycle counts are tuned so the whole harness stays in
//! CI-smoke territory even on a loaded runner.
//!
//! Run with: `cargo bench --bench fabric`

use commloc_net::{Fabric, FabricConfig, Message, NodeId, ReferenceFabric, Torus};
use std::path::PathBuf;

/// Deterministic per-cycle injection schedule: `schedule[cycle]` lists
/// `(src, dst)` pairs of 12-flit messages to inject before that cycle's
/// step. Both engines replay the identical schedule, so their delivered
/// counts must agree — the harness asserts it.
type Schedule = Vec<Vec<(NodeId, NodeId)>>;

struct Scenario {
    name: &'static str,
    dims: u32,
    radix: usize,
    config: FabricConfig,
    /// Per-node per-cycle injection probability.
    rate: f64,
    cycles: u64,
    /// Bursty scenarios inject only during the first `burst` cycles of
    /// every `period` cycles; the optimized engine fast-forwards the idle
    /// tail of each period.
    burst: Option<(u64, u64)>,
}

struct Outcome {
    name: &'static str,
    cycles: u64,
    cycles_per_sec: f64,
    delivered: u64,
    reference_cycles_per_sec: f64,
    speedup: f64,
}

const MESSAGE_FLITS: u32 = 12;

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            // The paper's 8x8 machine with the fabric's default buffering.
            name: "default_8x8",
            dims: 2,
            radix: 8,
            config: FabricConfig::default(),
            rate: 0.01,
            cycles: 60_000,
            burst: None,
        },
        Scenario {
            // The full-system simulator's fabric configuration.
            name: "sim_config_8x8",
            dims: 2,
            radix: 8,
            config: FabricConfig {
                link_vcs: 4,
                vc_buffer_capacity: 16,
                injection_buffer_capacity: 16,
                ..FabricConfig::default()
            },
            rate: 0.01,
            cycles: 60_000,
            burst: None,
        },
        Scenario {
            name: "torus_3d_4x4x4",
            dims: 3,
            radix: 4,
            config: FabricConfig::default(),
            rate: 0.01,
            cycles: 40_000,
            burst: None,
        },
        Scenario {
            // Bursts separated by long idle gaps: the active-set engine's
            // idle fast-forward pays off beyond its per-cycle wins.
            name: "bursty_idle_gaps",
            dims: 2,
            radix: 8,
            config: FabricConfig::default(),
            rate: 0.05,
            cycles: 200_000,
            burst: Some((200, 4_000)),
        },
    ]
}

/// xorshift64* — the schedule generator's only randomness source.
fn next_u64(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545F4914F6CDD1D)
}

fn build_schedule(s: &Scenario, seed: u64) -> Schedule {
    let nodes = s.radix.pow(s.dims);
    let mut state = seed | 1;
    let threshold = (s.rate * (1u64 << 53) as f64) as u64;
    (0..s.cycles)
        .map(|cycle| {
            if let Some((burst, period)) = s.burst {
                if cycle % period >= burst {
                    return Vec::new();
                }
            }
            let mut injections = Vec::new();
            for src in 0..nodes {
                if (next_u64(&mut state) >> 11) >= threshold {
                    continue;
                }
                let dst = next_u64(&mut state) as usize % nodes;
                if dst != src {
                    injections.push((NodeId(src), NodeId(dst)));
                }
            }
            injections
        })
        .collect()
}

/// Runs the optimized engine over the schedule; returns (wall seconds,
/// delivered messages). Idle stretches with no scheduled injections are
/// crossed with `fast_forward`, which the equivalence suite proves is
/// cycle-exact.
fn run_optimized(s: &Scenario, schedule: &Schedule) -> (f64, u64) {
    let mut fabric: Fabric<()> = Fabric::new(Torus::new(s.dims, s.radix), s.config);
    let start = std::time::Instant::now();
    let mut cycle = 0usize;
    while cycle < schedule.len() {
        if fabric.in_flight() == 0 && schedule[cycle].is_empty() {
            let gap = schedule[cycle..]
                .iter()
                .take_while(|injections| injections.is_empty())
                .count();
            cycle += fabric.fast_forward(gap as u64) as usize;
            continue;
        }
        for &(src, dst) in &schedule[cycle] {
            fabric.inject(Message::new(src, dst, MESSAGE_FLITS, ()));
        }
        fabric.step().expect("fault-free fabric step");
        cycle += 1;
    }
    (
        start.elapsed().as_secs_f64(),
        fabric.stats().delivered_messages,
    )
}

fn run_reference(s: &Scenario, schedule: &Schedule) -> (f64, u64) {
    let mut fabric: ReferenceFabric<()> =
        ReferenceFabric::new(Torus::new(s.dims, s.radix), s.config);
    let start = std::time::Instant::now();
    for injections in schedule {
        for &(src, dst) in injections {
            fabric.inject(Message::new(src, dst, MESSAGE_FLITS, ()));
        }
        fabric.step().expect("fault-free fabric step");
    }
    (
        start.elapsed().as_secs_f64(),
        fabric.stats().delivered_messages,
    )
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn render_json(outcomes: &[Outcome]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"fabric\",\n  \"unit\": \"simulated_network_cycles_per_sec\",\n  \"scenarios\": [\n",
    );
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cycles\": {}, \"cycles_per_sec\": {:.0}, \
             \"delivered_messages\": {}, \"reference_cycles_per_sec\": {:.0}, \
             \"speedup_vs_reference\": {:.2}}}{}\n",
            o.name,
            o.cycles,
            o.cycles_per_sec,
            o.delivered,
            o.reference_cycles_per_sec,
            o.speedup,
            if i + 1 < outcomes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"cycles_per_sec": <value>` for `name` out of a committed
/// baseline without a JSON dependency: scenario objects are one per line
/// in the format this harness writes.
fn baseline_cycles_per_sec(baseline: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = baseline.lines().find(|l| l.contains(&needle))?;
    let rest = line.split("\"cycles_per_sec\": ").nth(1)?;
    rest.split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let root = repo_root();
    let baseline_path = root.join("BENCH_fabric.json");
    let baseline = std::fs::read_to_string(&baseline_path).ok();

    let mut outcomes = Vec::new();
    println!("=== Fabric engine throughput (simulated network cycles / second) ===\n");
    for scenario in scenarios() {
        let schedule = build_schedule(&scenario, 0x1992_0615);
        let (secs, delivered) = run_optimized(&scenario, &schedule);
        let (ref_secs, ref_delivered) = run_reference(&scenario, &schedule);
        assert_eq!(
            delivered, ref_delivered,
            "{}: engines disagree on delivered messages",
            scenario.name
        );
        let cycles_per_sec = scenario.cycles as f64 / secs;
        let reference_cycles_per_sec = scenario.cycles as f64 / ref_secs;
        let speedup = cycles_per_sec / reference_cycles_per_sec;
        println!(
            "{:<18} {:>12.0} cyc/s  (reference {:>10.0} cyc/s, speedup {:>5.1}x, {} delivered)",
            scenario.name, cycles_per_sec, reference_cycles_per_sec, speedup, delivered
        );
        outcomes.push(Outcome {
            name: scenario.name,
            cycles: scenario.cycles,
            cycles_per_sec,
            delivered,
            reference_cycles_per_sec,
            speedup,
        });
    }

    let mut regressed = Vec::new();
    if let Some(baseline) = &baseline {
        println!();
        for o in &outcomes {
            let Some(committed) = baseline_cycles_per_sec(baseline, o.name) else {
                continue;
            };
            let ratio = o.cycles_per_sec / committed;
            println!(
                "vs committed baseline: {:<18} {:>6.2}x ({:.0} -> {:.0} cyc/s)",
                o.name, ratio, committed, o.cycles_per_sec
            );
            if ratio < 0.8 {
                regressed.push(format!(
                    "{}: {:.0} cyc/s is {:.0}% below the committed {:.0} cyc/s",
                    o.name,
                    o.cycles_per_sec,
                    (1.0 - ratio) * 100.0,
                    committed
                ));
            }
        }
    }

    std::fs::write(&baseline_path, render_json(&outcomes)).expect("write BENCH_fabric.json");
    println!("\nwrote {}", baseline_path.display());

    if !regressed.is_empty() {
        eprintln!("\nperformance regression (>20% below committed baseline):");
        for r in &regressed {
            eprintln!("  {r}");
        }
        if std::env::var("COMMLOC_PERF_ENFORCE").as_deref() == Ok("1") {
            std::process::exit(1);
        }
        eprintln!("  (set COMMLOC_PERF_ENFORCE=1 to fail the run)");
    }
}
