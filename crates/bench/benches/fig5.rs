//! Figure 5 — average message latency vs. average communication
//! distance: simulation points against combined-model predictions.
//!
//! The paper reports predicted latencies "track measured values to within
//! a few network cycles". Same setup as the Figure 4 bench, comparing
//! `T_m` instead of `r_m`.

use commloc_bench::{calibrated_model, time_it, timed, validation_runs};
use std::hint::black_box;

fn reproduce() {
    println!("\n=== Figure 5: message latency T_m vs distance d (sim vs model) ===");
    for contexts in [1usize, 2, 4] {
        let runs = timed(&format!("fig5/suite_p{contexts}"), || {
            validation_runs(contexts)
        });
        let model = calibrated_model(contexts, &runs);
        println!("\n-- {contexts} context(s) --");
        println!(
            "{:<16} {:>6} {:>10} {:>10} {:>8}",
            "mapping", "d", "T_m (sim)", "T_m (mod)", "diff"
        );
        let mut worst: f64 = 0.0;
        for run in &runs {
            let predicted = model
                .solve(run.measured.distance)
                .map(|op| op.message_latency)
                .unwrap_or(f64::NAN);
            let diff = predicted - run.measured.message_latency;
            worst = worst.max(diff.abs());
            println!(
                "{:<16} {:>6.2} {:>10.1} {:>10.1} {:>8.1}",
                run.name, run.measured.distance, run.measured.message_latency, predicted, diff
            );
        }
        println!(
            "worst-case latency gap: {worst:.1} network cycles \
             (paper: within a few network cycles)"
        );
    }
}

fn main() {
    timed("fig5/reproduce_total", reproduce);
    let runs = validation_runs(2);
    let model = calibrated_model(2, &runs);
    time_it("fig5/combined_model_solve", 10_000, || {
        black_box(model.solve(black_box(6.0)).unwrap().message_latency)
    });
}
