//! Figure 7 — expected gain from exploiting physical locality vs.
//! machine size, for one, two, and four hardware contexts (log-log).
//!
//! Each curve starts at unity gain for ten processors, reaches a gain of
//! about two around 1,000 processors, and climbs into the tens by a
//! million processors (paper: 40–55). Because the measured application
//! has a very small computation grain, these are rough **upper bounds**
//! on the gain available to any application.

use commloc_bench::time_it;
use commloc_model::{expected_gain, log_spaced_sizes, MachineConfig};
use std::hint::black_box;

fn reproduce() {
    println!("\n=== Figure 7: expected gain vs machine size (ideal / random mapping) ===");
    let sizes = log_spaced_sizes(10.0, 1e6, 2);
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>9}",
        "N", "d_random", "p=1", "p=2", "p=4"
    );
    for &n in &sizes {
        let mut row = String::new();
        let mut d_random = 0.0;
        for p in [1u32, 2, 4] {
            let cfg = MachineConfig::alewife().with_contexts(p).with_nodes(n);
            let point = expected_gain(&cfg).expect("solvable");
            d_random = point.random_distance;
            row.push_str(&format!(" {:>8.2}", point.gain));
        }
        println!("{n:>10.0} {d_random:>10.1}{row}");
    }
    for p in [1u32, 2, 4] {
        let at = |n: f64| {
            expected_gain(&MachineConfig::alewife().with_contexts(p).with_nodes(n))
                .expect("solvable")
                .gain
        };
        println!(
            "p={p}: gain(10) = {:.2}, gain(10^3) = {:.2}, gain(10^6) = {:.1} \
             (paper: ~1, ~2, 40-55)",
            at(10.0),
            at(1e3),
            at(1e6)
        );
    }
}

fn main() {
    reproduce();
    let cfg = MachineConfig::alewife().with_contexts(2).with_nodes(1e6);
    time_it("fig7/expected_gain_1e6", 1_000, || {
        black_box(expected_gain(black_box(&cfg)).unwrap().gain)
    });
}
