//! Shard-parallel scale-out throughput harness.
//!
//! Measures the sharded engine's throughput in **simulated network
//! cycles per wall-clock second** on a large torus (default 256x256 =
//! 65,536 nodes — three orders of magnitude past the paper's 8x8
//! machine) as the worker-thread count grows, and writes the scaling
//! curve to `BENCH_scale.json` at the repository root.
//!
//! Every point runs the identical simulation — the sharded engine is
//! bit-deterministic for any worker count — so the harness also
//! cross-checks that completions and elapsed cycles match across
//! points, making this a cheap end-to-end determinism smoke on top of
//! the equivalence tests and fuzzer.
//!
//! The record carries `host_cores`: worker-count speedup is bounded by
//! the physical cores of the machine that produced it, so a curve that
//! is flat beyond `host_cores` workers is the host's limit, not the
//! engine's. Peak resident memory is sampled from `/proc/self/status`
//! (`VmHWM`) and reported as bytes per simulated node — the SoA-slab
//! footprint figure that gates whether N = 10^6 fits in RAM.
//!
//! Regression gate: if a committed `BENCH_scale.json` exists and the
//! environment sets `COMMLOC_PERF_ENFORCE=1`, the harness exits
//! non-zero when any worker point's cycles/sec drops more than 50%
//! below the committed figure (same tolerance as the machine bench —
//! full-machine wall-clock on shared hosts is noisy, and the failure
//! modes this guards against cost well over 2x).
//!
//! Run with: `cargo bench --bench scale`. Set `COMMLOC_SCALE_RADIX`
//! (e.g. 64) for a quick smoke run — smoke runs print the curve but
//! leave `BENCH_scale.json` untouched, so CI can exercise the harness
//! without committing a small-torus baseline.

use commloc_bench::{render_scale_json, ScalePoint};
use commloc_sim::{set_job_budget, Mapping, ShardedMachine, SimConfig};
use std::path::PathBuf;

const DEFAULT_RADIX: usize = 256;
const DEFAULT_CYCLES: u64 = 400;
const SHARDS: usize = 16;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Builds a fresh sharded machine and runs `cycles` network cycles with
/// `workers` threads, returning wall seconds and the determinism
/// observables.
fn run_point(
    config: &SimConfig,
    mapping: &Mapping,
    cycles: u64,
    workers: usize,
) -> (f64, u64, u64) {
    let mut machine = ShardedMachine::new(config, mapping, SHARDS);
    machine.set_jobs(workers);
    let start = std::time::Instant::now();
    machine
        .run_network_cycles(cycles)
        .expect("scale scenario must not stall");
    (
        start.elapsed().as_secs_f64(),
        machine.net_cycle(),
        machine.completions(),
    )
}

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Pulls `"cycles_per_sec": <value>` for a worker point out of a
/// committed baseline without a JSON dependency: point objects are one
/// per line in the format this harness writes.
fn baseline_cycles_per_sec(baseline: &str, workers: usize) -> Option<f64> {
    let needle = format!("\"workers\": {workers},");
    let line = baseline.lines().find(|l| l.contains(&needle))?;
    let rest = line.split("\"cycles_per_sec\": ").nth(1)?;
    rest.split(|c: char| c != '.' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let radix = env_usize("COMMLOC_SCALE_RADIX", DEFAULT_RADIX);
    let cycles = env_usize("COMMLOC_SCALE_CYCLES", DEFAULT_CYCLES as usize) as u64;
    let smoke = radix != DEFAULT_RADIX;
    let nodes = radix * radix;
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    let config = SimConfig {
        dims: 2,
        radix,
        ..SimConfig::default()
    };
    let mapping = Mapping::identity(nodes);

    // Raise the process budget up front so every point gets exactly the
    // workers it asks for; `set_jobs` per machine then selects the count.
    set_job_budget(*WORKERS.iter().max().unwrap());

    println!(
        "=== Shard-parallel scale-out: {radix}x{radix} torus ({nodes} nodes, {SHARDS} shards, \
         {cycles} net cycles, host has {host_cores} core(s)) ===\n"
    );
    let mut points: Vec<ScalePoint> = Vec::new();
    for &workers in &WORKERS {
        let (secs, net_cycles, completions) = run_point(&config, &mapping, cycles, workers);
        assert_eq!(net_cycles, cycles, "engine must run the requested cycles");
        if let Some(first) = points.first() {
            assert_eq!(
                completions, first.completions,
                "sharded engine must be bit-deterministic across worker counts"
            );
        }
        let cycles_per_sec = net_cycles as f64 / secs;
        let speedup = points
            .first()
            .map_or(1.0, |first| cycles_per_sec / first.cycles_per_sec);
        println!(
            "{workers} worker(s): {cycles_per_sec:>10.1} cyc/s  ({secs:.2}s wall, \
             {completions} completions, speedup {speedup:.2}x)"
        );
        points.push(ScalePoint {
            workers,
            cycles: net_cycles,
            wall_secs: secs,
            cycles_per_sec,
            completions,
            speedup,
        });
    }

    let rss_per_node = peak_rss_bytes().map(|b| b as f64 / nodes as f64);
    match rss_per_node {
        Some(rss) => println!("\npeak RSS: {rss:.0} bytes per simulated node"),
        None => println!("\npeak RSS: VmHWM unavailable on this host"),
    }

    if smoke {
        println!("\nsmoke run (radix {radix} != {DEFAULT_RADIX}): BENCH_scale.json left untouched");
        return;
    }

    let root = repo_root();
    let baseline_path = root.join("BENCH_scale.json");
    let baseline = std::fs::read_to_string(&baseline_path).ok();
    let mut regressed = Vec::new();
    if let Some(baseline) = &baseline {
        println!();
        for p in &points {
            let Some(committed) = baseline_cycles_per_sec(baseline, p.workers) else {
                continue;
            };
            let ratio = p.cycles_per_sec / committed;
            println!(
                "vs committed baseline: {} worker(s) {:>6.2}x ({:.0} -> {:.0} cyc/s)",
                p.workers, ratio, committed, p.cycles_per_sec
            );
            if ratio < 0.5 {
                regressed.push(format!(
                    "{} worker(s): {:.0} cyc/s is {:.0}% below the committed {:.0} cyc/s",
                    p.workers,
                    p.cycles_per_sec,
                    (1.0 - ratio) * 100.0,
                    committed
                ));
            }
        }
    }

    std::fs::write(
        &baseline_path,
        render_scale_json(radix, SHARDS, host_cores, rss_per_node, &points),
    )
    .expect("write BENCH_scale.json");
    println!("\nwrote {}", baseline_path.display());

    if !regressed.is_empty() {
        eprintln!("\nperformance regression (>50% below committed baseline):");
        for r in &regressed {
            eprintln!("  {r}");
        }
        if std::env::var("COMMLOC_PERF_ENFORCE").as_deref() == Ok("1") {
            std::process::exit(1);
        }
        eprintln!("  (set COMMLOC_PERF_ENFORCE=1 to fail the run)");
    }
}
