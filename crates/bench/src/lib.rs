//! Shared machinery for the reproduction benches.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper's evaluation: it prints the reproduced rows/series to stdout
//! (so `cargo bench` output is the reproduction record) and then times
//! the underlying computation with the in-tree [`time_it`] loop. The
//! expensive cycle-level simulations run **once**, outside the
//! measurement loops.
//!
//! The scenario definitions (windows, suite seed, calibration) live in
//! [`commloc_sim::conformance`] so the bench targets and the conformance
//! gates agree on them by construction; this crate re-exports them under
//! their historical names.

pub use commloc_sim::conformance::{
    calibrated_model, fit_message_curve, pct_err, suite_jobs as bench_jobs, validation_runs,
    ValidationRun, SUITE_SEED, WARMUP, WINDOW,
};

/// Times `f` with a warmup pass and a fixed iteration loop, printing a
/// mean per-iteration figure. The in-tree replacement for an external
/// bench harness: the workspace builds without registry access, so the
/// bench targets carry their own timing loop.
pub fn time_it<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / f64::from(iters.max(1));
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "us")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("time/{label}: {value:.3} {unit}/iter over {iters} iters");
}

/// Runs `f` once, printing its wall-clock time, and returns its value —
/// for one-shot stages (the expensive cycle-level sweeps) whose duration
/// should appear in the bench record.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let value = f();
    println!("wallclock/{label}: {:.3} s", start.elapsed().as_secs_f64());
    value
}

/// One worker point of the scale-out throughput curve
/// (`benches/scale.rs`).
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    pub workers: usize,
    pub cycles: u64,
    pub wall_secs: f64,
    pub cycles_per_sec: f64,
    pub completions: u64,
    pub speedup: f64,
}

/// Renders `BENCH_scale.json`.
///
/// `rss_per_node` is `None` when `/proc/self/status` has no readable
/// `VmHWM` line (non-Linux hosts, stripped procfs). In that case the
/// `peak_rss_bytes_per_node` field is omitted entirely — never written as
/// `null` or a bogus `0` — and an explanatory `peak_rss_note` records
/// why, so the file stays valid JSON with every present field numeric or
/// string. Lives here (not in the bench target) so `cargo test` covers
/// both shapes; the CI perf gate machine-parses this output.
pub fn render_scale_json(
    radix: usize,
    shards: usize,
    host_cores: usize,
    rss_per_node: Option<f64>,
    points: &[ScalePoint],
) -> String {
    let rss_field = match rss_per_node {
        Some(rss) => format!("\"peak_rss_bytes_per_node\": {rss:.0},\n  "),
        None => String::from(
            "\"peak_rss_note\": \"VmHWM unavailable on this host \
             (non-Linux or stripped /proc); peak_rss_bytes_per_node omitted\",\n  ",
        ),
    };
    let mut out = format!(
        "{{\n  \"bench\": \"scale\",\n  \"unit\": \"simulated_network_cycles_per_sec\",\n  \
         \"torus\": \"{radix}x{radix}\",\n  \"nodes\": {},\n  \"shards\": {shards},\n  \
         \"host_cores\": {host_cores},\n  {rss_field}\
         \"note\": \"speedup_vs_1_worker is bounded above by host_cores; a flat curve beyond \
         host_cores workers reflects the recording host, not the engine\",\n  \"points\": [\n",
        radix * radix,
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"cycles\": {}, \"wall_secs\": {:.3}, \
             \"cycles_per_sec\": {:.1}, \"completions\": {}, \"speedup_vs_1_worker\": {:.2}}}{}\n",
            p.workers,
            p.cycles,
            p.wall_secs,
            p.cycles_per_sec,
            p.completions,
            p.speedup,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use commloc_net::Torus;
    use commloc_sim::{mapping_suite, run_experiment, SimConfig};

    fn scale_points() -> Vec<ScalePoint> {
        vec![
            ScalePoint {
                workers: 1,
                cycles: 400,
                wall_secs: 2.0,
                cycles_per_sec: 200.0,
                completions: 99,
                speedup: 1.0,
            },
            ScalePoint {
                workers: 2,
                cycles: 400,
                wall_secs: 1.0,
                cycles_per_sec: 400.0,
                completions: 99,
                speedup: 2.0,
            },
        ]
    }

    #[test]
    fn scale_json_with_rss_emits_numeric_field() {
        let json = render_scale_json(256, 16, 8, Some(9715.4), &scale_points());
        assert!(json.contains("\"peak_rss_bytes_per_node\": 9715,"));
        assert!(!json.contains("peak_rss_note"));
        assert!(!json.contains("null"));
    }

    #[test]
    fn scale_json_without_rss_omits_field_with_note() {
        let json = render_scale_json(256, 16, 8, None, &scale_points());
        // The explanatory note names the omitted field, so check for the
        // field *key* form specifically.
        assert!(
            !json.contains("\"peak_rss_bytes_per_node\":"),
            "missing VmHWM must omit the field, not fake it"
        );
        assert!(json.contains("\"peak_rss_note\""));
        assert!(!json.contains("null"), "no malformed/null JSON on fallback");
    }

    #[test]
    fn scale_json_shape_is_stable_both_ways() {
        // The perf gate greps point lines; both variants must keep the
        // one-object-per-line points array and balanced braces.
        for rss in [Some(100.0), None] {
            let json = render_scale_json(64, 16, 4, rss, &scale_points());
            assert_eq!(json.matches("\"workers\":").count(), 2);
            assert_eq!(
                json.matches('{').count(),
                json.matches('}').count(),
                "unbalanced braces"
            );
            assert!(json
                .lines()
                .any(|l| l.contains("\"cycles_per_sec\": 200.0")));
        }
    }

    #[test]
    fn calibrated_model_solves_suite_distances() {
        // A fast smoke test with a tiny window: the calibrated model must
        // produce operating points for every suite distance.
        let config = SimConfig::default();
        let torus = Torus::new(config.dims, config.radix);
        let runs: Vec<ValidationRun> = mapping_suite(&torus, 3)
            .into_iter()
            .take(4)
            .map(|m| ValidationRun {
                name: m.name,
                distance: m.distance,
                measured: run_experiment(&config, &m.mapping, 4_000, 10_000)
                    .expect("fault-free smoke run"),
            })
            .collect();
        let model = calibrated_model(1, &runs);
        for run in &runs {
            let op = model.solve(run.measured.distance).expect("solvable");
            assert!(op.message_rate > 0.0);
        }
    }

    #[test]
    fn pct_err_signs() {
        assert!(pct_err(11.0, 10.0) > 0.0);
        assert!(pct_err(9.0, 10.0) < 0.0);
    }
}
