//! Shared machinery for the reproduction benches.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper's evaluation: it prints the reproduced rows/series to stdout
//! (so `cargo bench` output is the reproduction record) and then times
//! the underlying computation with the in-tree [`time_it`] loop. The
//! expensive cycle-level simulations run **once**, outside the
//! measurement loops.
//!
//! The scenario definitions (windows, suite seed, calibration) live in
//! [`commloc_sim::conformance`] so the bench targets and the conformance
//! gates agree on them by construction; this crate re-exports them under
//! their historical names.

pub use commloc_sim::conformance::{
    calibrated_model, fit_message_curve, pct_err, suite_jobs as bench_jobs, validation_runs,
    ValidationRun, SUITE_SEED, WARMUP, WINDOW,
};

/// Times `f` with a warmup pass and a fixed iteration loop, printing a
/// mean per-iteration figure. The in-tree replacement for an external
/// bench harness: the workspace builds without registry access, so the
/// bench targets carry their own timing loop.
pub fn time_it<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / f64::from(iters.max(1));
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "us")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("time/{label}: {value:.3} {unit}/iter over {iters} iters");
}

/// Runs `f` once, printing its wall-clock time, and returns its value —
/// for one-shot stages (the expensive cycle-level sweeps) whose duration
/// should appear in the bench record.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let value = f();
    println!("wallclock/{label}: {:.3} s", start.elapsed().as_secs_f64());
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use commloc_net::Torus;
    use commloc_sim::{mapping_suite, run_experiment, SimConfig};

    #[test]
    fn calibrated_model_solves_suite_distances() {
        // A fast smoke test with a tiny window: the calibrated model must
        // produce operating points for every suite distance.
        let config = SimConfig::default();
        let torus = Torus::new(config.dims, config.radix);
        let runs: Vec<ValidationRun> = mapping_suite(&torus, 3)
            .into_iter()
            .take(4)
            .map(|m| ValidationRun {
                name: m.name,
                distance: m.distance,
                measured: run_experiment(&config, &m.mapping, 4_000, 10_000)
                    .expect("fault-free smoke run"),
            })
            .collect();
        let model = calibrated_model(1, &runs);
        for run in &runs {
            let op = model.solve(run.measured.distance).expect("solvable");
            assert!(op.message_rate > 0.0);
        }
    }

    #[test]
    fn pct_err_signs() {
        assert!(pct_err(11.0, 10.0) > 0.0);
        assert!(pct_err(9.0, 10.0) < 0.0);
    }
}
