//! Shared machinery for the reproduction benches.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper's evaluation: it prints the reproduced rows/series to stdout
//! (so `cargo bench` output is the reproduction record) and then times
//! the underlying computation with the in-tree [`time_it`] loop. The
//! expensive cycle-level simulations run **once**, outside the
//! measurement loops.

use commloc_model::{
    ApplicationModel, CombinedModel, EndpointContention, NetworkModel, NodeModel, TorusGeometry,
    TransactionModel,
};
use commloc_net::Torus;
use commloc_sim::{
    default_jobs, fit_line, mapping_suite, run_sweep, FitError, LineFit, Measurements, SimConfig,
};

/// Warmup window (network cycles) for validation simulations.
pub const WARMUP: u64 = 15_000;
/// Measurement window (network cycles) for validation simulations.
pub const WINDOW: u64 = 45_000;
/// Mapping-suite seed shared by all validation benches.
pub const SUITE_SEED: u64 = 1992;

/// One validation run: a named mapping and what the simulator measured.
#[derive(Debug, Clone)]
pub struct ValidationRun {
    /// The mapping's name.
    pub name: String,
    /// Analytic average neighbour distance of the mapping.
    pub distance: f64,
    /// Simulator measurements.
    pub measured: Measurements,
}

/// Worker-thread count for validation sweeps: `COMMLOC_JOBS` if set,
/// otherwise the machine's available parallelism.
pub fn bench_jobs() -> usize {
    std::env::var("COMMLOC_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(default_jobs)
}

/// Runs the full validation suite (all mappings) at one context count,
/// fanning the independent simulations across [`bench_jobs`] threads.
pub fn validation_runs(contexts: usize) -> Vec<ValidationRun> {
    let config = SimConfig {
        contexts,
        ..SimConfig::default()
    };
    let torus = Torus::new(config.dims, config.radix);
    let suite = mapping_suite(&torus, SUITE_SEED);
    run_sweep(&config, &suite, WARMUP, WINDOW, bench_jobs())
        .expect("fault-free validation run")
        .into_iter()
        .map(|p| ValidationRun {
            name: p.name,
            distance: p.distance,
            measured: p.measured,
        })
        .collect()
}

/// Fits the application message curve (Figure 3's analysis) from a
/// validation suite: `T_m = s * t_m - F`.
///
/// # Errors
///
/// Returns a [`FitError`] for a degenerate suite (fewer than two runs,
/// or every mapping yielding the same message interval).
pub fn fit_message_curve(runs: &[ValidationRun]) -> Result<LineFit, FitError> {
    let points: Vec<(f64, f64)> = runs
        .iter()
        .map(|r| (r.measured.message_interval, r.measured.message_latency))
        .collect();
    fit_line(&points)
}

/// Builds a combined model calibrated from measured application behavior,
/// following the paper's methodology: the latency sensitivity and curve
/// offset come from the fitted message curve (absorbing the measured
/// growth of `c` with context count that the paper reports), `g` and `B`
/// are the measured averages, and the network model is the analytical
/// Section 2.4 model for the simulated torus.
pub fn calibrated_model(contexts: usize, runs: &[ValidationRun]) -> CombinedModel {
    let n = runs.len() as f64;
    let g: f64 = runs
        .iter()
        .map(|r| r.measured.messages_per_transaction)
        .sum::<f64>()
        / n;
    let b: f64 = runs
        .iter()
        .map(|r| r.measured.avg_message_size)
        .sum::<f64>()
        / n;
    let b_resid: f64 = runs
        .iter()
        .map(|r| r.measured.residual_message_size)
        .sum::<f64>()
        / n;
    let t_r: f64 = runs.iter().map(|r| r.measured.run_length).sum::<f64>() / n;
    // A degenerate suite (every mapping at one message interval) cannot
    // pin the slope; rather than failing the whole calibration, fall back
    // to the nominal slope implied by the paper's request–reply critical
    // path `c = 2`.
    let (s, offset) = match fit_message_curve(runs) {
        Ok(fit) => (fit.slope.max(0.1), (-fit.intercept).max(t_r * 0.5)),
        Err(_) => ((contexts as f64 * g / 2.0).max(0.1), t_r * 0.5),
    };
    // Effective critical path and fixed overhead reproducing (s, offset).
    let c_eff = (contexts as f64 * g / s).max(1.0);
    let t_f = (c_eff * offset - t_r).max(0.0);
    let app = ApplicationModel::new(t_r, contexts as u32, 22.0).expect("valid application");
    let txn = TransactionModel::new(c_eff, g.max(c_eff), t_f).expect("valid transaction");
    let geometry = TorusGeometry::new(2, 8.0).expect("valid torus");
    let network = NetworkModel::new(geometry, b)
        .expect("valid network")
        .with_contention_size(b_resid)
        .with_endpoint_contention(EndpointContention::MD1);
    CombinedModel::new(NodeModel::new(app, txn), network)
}

/// Formats a percentage error.
pub fn pct_err(model: f64, measured: f64) -> f64 {
    (model - measured) / measured * 100.0
}

/// Times `f` with a warmup pass and a fixed iteration loop, printing a
/// mean per-iteration figure. The in-tree replacement for an external
/// bench harness: the workspace builds without registry access, so the
/// bench targets carry their own timing loop.
pub fn time_it<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / f64::from(iters.max(1));
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "us")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("time/{label}: {value:.3} {unit}/iter over {iters} iters");
}

/// Runs `f` once, printing its wall-clock time, and returns its value —
/// for one-shot stages (the expensive cycle-level sweeps) whose duration
/// should appear in the bench record.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let value = f();
    println!("wallclock/{label}: {:.3} s", start.elapsed().as_secs_f64());
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use commloc_sim::run_experiment;

    #[test]
    fn calibrated_model_solves_suite_distances() {
        // A fast smoke test with a tiny window: the calibrated model must
        // produce operating points for every suite distance.
        let config = SimConfig::default();
        let torus = Torus::new(config.dims, config.radix);
        let runs: Vec<ValidationRun> = mapping_suite(&torus, 3)
            .into_iter()
            .take(4)
            .map(|m| ValidationRun {
                name: m.name,
                distance: m.distance,
                measured: run_experiment(&config, &m.mapping, 4_000, 10_000)
                    .expect("fault-free smoke run"),
            })
            .collect();
        let model = calibrated_model(1, &runs);
        for run in &runs {
            let op = model.solve(run.measured.distance).expect("solvable");
            assert!(op.message_rate > 0.0);
        }
    }

    #[test]
    fn pct_err_signs() {
        assert!(pct_err(11.0, 10.0) > 0.0);
        assert!(pct_err(9.0, 10.0) < 0.0);
    }
}
