//! Non-blocking (pipelined) processors: multiple outstanding
//! transactions without context switching.
//!
//! Section 2.1 of the paper notes that mechanisms other than block
//! multithreading — weak ordering, data prefetching, non-blocking loads —
//! have essentially the same effect on the application model: a processor
//! that keeps an average of `w` transactions outstanding has an
//! application transaction curve with slope `w` times that of a blocking
//! processor. This module provides such a processor: a single thread
//! whose memory operations enter a bounded outstanding window, stalling
//! only when the window is full (or, for reads whose values feed the
//! program, at the consuming instruction).

use crate::processor::IssueRequest;
use crate::program::{ThreadOp, ThreadProgram};
use commloc_mem::MemOp;
use std::collections::VecDeque;

/// A single-threaded processor with a bounded window of outstanding
/// memory transactions (a model of prefetching / weakly-ordered
/// architectures).
///
/// Reads conceptually return their value at *use* time; since the
/// [`ThreadProgram`] interface consumes read values at the next fetch,
/// this processor hands the program the most recently completed read —
/// adequate for the paper's synthetic workload, whose "trivial
/// computation" tolerates value staleness (threads never synchronize).
///
/// # Examples
///
/// ```
/// use commloc_mem::Addr;
/// use commloc_proc::{LoopProgram, PipelinedProcessor, ThreadOp};
///
/// let program = LoopProgram::new(vec![ThreadOp::Compute(4), ThreadOp::Read(Addr(0))]);
/// let mut cpu = PipelinedProcessor::new(Box::new(program), 4);
/// // The window lets several reads overlap: issue without waiting.
/// let mut issued = 0;
/// for _ in 0..30 {
///     if cpu.step().is_some() {
///         issued += 1;
///     }
/// }
/// assert!(issued >= 4, "window of 4 should overlap issues: {issued}");
/// ```
#[derive(Debug)]
pub struct PipelinedProcessor {
    program: Box<dyn ThreadProgram>,
    window: usize,
    outstanding: VecDeque<usize>,
    next_slot: usize,
    computing: u32,
    last_read: Option<u64>,
    stalled_cycles: u64,
    busy_cycles: u64,
    issued: u64,
    cycles: u64,
}

impl PipelinedProcessor {
    /// Creates a pipelined processor with the given outstanding-window
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(program: Box<dyn ThreadProgram>, window: usize) -> Self {
        assert!(window > 0, "window must admit at least one transaction");
        Self {
            program,
            window,
            outstanding: VecDeque::new(),
            next_slot: 0,
            computing: 0,
            last_read: None,
            stalled_cycles: 0,
            busy_cycles: 0,
            issued: 0,
            cycles: 0,
        }
    }

    /// The outstanding-window size `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Transactions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Memory operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Cycles stepped so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles stalled on a full window.
    pub fn stalled_cycles(&self) -> u64 {
        self.stalled_cycles
    }

    /// Cycles spent computing.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Average inter-issue time over the processor's lifetime.
    pub fn avg_issue_interval(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.cycles as f64 / self.issued as f64
        }
    }

    /// Completes the transaction issued with `IssueRequest::context ==
    /// slot`, freeing a window entry.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not outstanding.
    pub fn complete(&mut self, slot: usize, value: u64) {
        let pos = self
            .outstanding
            .iter()
            .position(|&s| s == slot)
            .expect("completion for unknown slot");
        self.outstanding.remove(pos);
        self.last_read = Some(value);
    }

    /// Advances one processor cycle; returns an issue if one happened.
    /// The `context` field of the returned request carries the window
    /// slot to pass back to [`PipelinedProcessor::complete`].
    pub fn step(&mut self) -> Option<IssueRequest> {
        self.cycles += 1;
        if self.computing > 0 {
            self.computing -= 1;
            self.busy_cycles += 1;
            return None;
        }
        if self.outstanding.len() >= self.window {
            self.stalled_cycles += 1;
            return None;
        }
        loop {
            match self.program.next(self.last_read.take()) {
                ThreadOp::Compute(0) => continue,
                ThreadOp::Compute(cycles) => {
                    // Execute the first cycle now.
                    self.computing = cycles - 1;
                    self.busy_cycles += 1;
                    return None;
                }
                ThreadOp::Read(addr) => return Some(self.issue(MemOp::Read(addr))),
                ThreadOp::Write(addr, value) => return Some(self.issue(MemOp::Write(addr, value))),
            }
        }
    }

    fn issue(&mut self, op: MemOp) -> IssueRequest {
        let slot = self.next_slot;
        self.next_slot = self.next_slot.wrapping_add(1) % (self.window * 2 + 1);
        // Slots must be unique among outstanding entries; with a ring of
        // 2w+1 ids and at most w outstanding, reuse cannot collide.
        self.outstanding.push_back(slot);
        self.issued += 1;
        IssueRequest { context: slot, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LoopProgram;
    use commloc_mem::Addr;

    fn run_fixed_latency(cpu: &mut PipelinedProcessor, cycles: u64, latency: u64) -> u64 {
        let mut outstanding: Vec<(u64, usize)> = Vec::new();
        for now in 0..cycles {
            outstanding.retain(|&(due, slot)| {
                if due <= now {
                    cpu.complete(slot, 0);
                    false
                } else {
                    true
                }
            });
            if let Some(req) = cpu.step() {
                outstanding.push((now + latency, req.context));
            }
        }
        cpu.issued()
    }

    fn cpu(grain: u32, window: usize) -> PipelinedProcessor {
        PipelinedProcessor::new(
            Box::new(LoopProgram::new(vec![
                ThreadOp::Compute(grain),
                ThreadOp::Read(Addr(0)),
            ])),
            window,
        )
    }

    #[test]
    #[should_panic(expected = "at least one transaction")]
    fn zero_window_panics() {
        cpu(5, 0);
    }

    #[test]
    fn window_one_behaves_like_blocking_processor() {
        // Eq. 1: t_t = T_r + T_t (+1 issue cycle).
        let mut p = cpu(20, 1);
        let total = 30_000;
        let issues = run_fixed_latency(&mut p, total, 100);
        let t_t = total as f64 / issues as f64;
        assert!((t_t - 121.0).abs() <= 2.0, "t_t = {t_t}");
    }

    #[test]
    fn window_w_divides_latency_sensitivity() {
        // The paper's claim: w outstanding transactions multiply the
        // transaction-curve slope by w, so at large latency
        // t_t ~ (T_r + T_t)/w.
        let grain = 10;
        let latency = 400u64;
        for window in [2usize, 4] {
            let mut p = cpu(grain, window);
            let total = 60_000;
            let issues = run_fixed_latency(&mut p, total, latency);
            let t_t = total as f64 / issues as f64;
            let expected = (grain as f64 + 1.0 + latency as f64) / window as f64;
            assert!(
                (t_t - expected).abs() / expected < 0.08,
                "w={window}: t_t = {t_t}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn small_latency_is_fully_hidden() {
        // With latency below w * (T_r + 1), the window never fills: the
        // processor issues every T_r + 1 cycles, like a zero-latency
        // machine.
        let mut p = cpu(10, 4);
        let total = 20_000;
        let issues = run_fixed_latency(&mut p, total, 30);
        let t_t = total as f64 / issues as f64;
        assert!((t_t - 11.0).abs() < 1.0, "t_t = {t_t}");
        assert_eq!(p.stalled_cycles(), 0, "window never fills at low latency");
    }

    #[test]
    fn in_flight_bounded_by_window() {
        let mut p = cpu(2, 3);
        let mut outstanding: Vec<(u64, usize)> = Vec::new();
        for now in 0..5_000u64 {
            outstanding.retain(|&(due, slot)| {
                if due <= now {
                    p.complete(slot, 0);
                    false
                } else {
                    true
                }
            });
            if let Some(req) = p.step() {
                outstanding.push((now + 500, req.context));
            }
            assert!(p.in_flight() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "unknown slot")]
    fn bogus_completion_panics() {
        let mut p = cpu(2, 2);
        p.complete(7, 0);
    }

    #[test]
    fn cycle_accounting_consistent() {
        let mut p = cpu(5, 2);
        run_fixed_latency(&mut p, 10_000, 80);
        assert_eq!(
            p.busy_cycles() + p.stalled_cycles() + p.issued(),
            p.cycles(),
            "busy + stalled + issue cycles must cover every cycle"
        );
    }
}
