//! Block-multithreaded processor model.
//!
//! This crate implements the processor substrate of the validation
//! experiments in Johnson, *"The Impact of Communication Locality on
//! Large-Scale Multiprocessor Performance"* (ISCA 1992): a Sparcle-style
//! block-multithreaded processor with a configurable number of hardware
//! contexts and an 11-cycle context switch. A context runs its thread
//! until it issues a shared-memory operation, then the processor switches
//! to the next runnable context; when every context is blocked the
//! processor idles. This is precisely the behavior the paper's
//! application model (Section 2.1) abstracts into the grain `T_r`,
//! context count `p`, and switch time `T_s`.
//!
//! # Quick start
//!
//! ```
//! use commloc_mem::Addr;
//! use commloc_proc::{LoopProgram, Processor, ThreadOp};
//!
//! // Two contexts, each computing 20 cycles then reading a word.
//! let programs: Vec<Box<dyn commloc_proc::ThreadProgram>> = (0..2)
//!     .map(|i| {
//!         Box::new(LoopProgram::new(vec![
//!             ThreadOp::Compute(20),
//!             ThreadOp::Read(Addr(i * 2)),
//!         ])) as Box<dyn commloc_proc::ThreadProgram>
//!     })
//!     .collect();
//! let mut cpu = Processor::new(programs, 11);
//! let issue = loop {
//!     if let Some(req) = cpu.step() {
//!         break req;
//!     }
//! };
//! assert_eq!(issue.context, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod pipelined;
mod processor;
mod program;

pub use pipelined::PipelinedProcessor;
pub use processor::{IssueRequest, ProcStats, Processor};
pub use program::{LoopProgram, ParkedProgram, ReissueProgram, ThreadOp, ThreadProgram};
