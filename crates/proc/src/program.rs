//! Thread programs: the instruction-stream abstraction.
//!
//! The paper's model observes processors only through their computation
//! grain and transaction issue behavior, so threads are represented as
//! generators of [`ThreadOp`]s — compute for some cycles, then read or
//! write a shared word (see DESIGN.md's substitution note on
//! instruction-level Sparcle simulation).

use commloc_mem::Addr;
use std::fmt;

/// One step of a thread's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadOp {
    /// Execute for the given number of processor cycles.
    Compute(u32),
    /// Load a shared word (a potential communication transaction).
    Read(Addr),
    /// Store a shared word (a potential communication transaction).
    Write(Addr, u64),
}

/// A thread: an unbounded generator of operations.
///
/// `last_read` carries the value returned by the thread's most recent
/// [`ThreadOp::Read`], if the previous operation was a read — programs
/// that compute on loaded data (like the paper's synthetic application)
/// consume it; others may ignore it.
///
/// Programs must be `Send` so whole machines (which own them through
/// their processors) can be stepped by shard worker threads.
pub trait ThreadProgram: fmt::Debug + Send {
    /// Produces the thread's next operation.
    fn next(&mut self, last_read: Option<u64>) -> ThreadOp;

    /// Clones the program behind the trait object. Machine snapshots
    /// (warm-start) deep-copy whole processors, so every program must be
    /// cloneable; implementations are invariably `Box::new(self.clone())`.
    fn clone_box(&self) -> Box<dyn ThreadProgram>;
}

impl Clone for Box<dyn ThreadProgram> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A program that cycles through a fixed sequence of operations forever.
/// Useful for tests and microbenchmarks.
#[derive(Debug, Clone)]
pub struct LoopProgram {
    ops: Vec<ThreadOp>,
    index: usize,
    /// Number of completed passes through the sequence.
    iterations: u64,
}

impl LoopProgram {
    /// Creates a looping program.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or contains only zero-cycle computes (the
    /// program must consume time each iteration).
    pub fn new(ops: Vec<ThreadOp>) -> Self {
        assert!(!ops.is_empty(), "program must contain operations");
        assert!(
            ops.iter().any(|op| !matches!(op, ThreadOp::Compute(0))),
            "program must consume cycles"
        );
        Self {
            ops,
            index: 0,
            iterations: 0,
        }
    }

    /// Completed passes through the operation sequence.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

impl ThreadProgram for LoopProgram {
    fn clone_box(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn next(&mut self, _last_read: Option<u64>) -> ThreadOp {
        let op = self.ops[self.index];
        self.index += 1;
        if self.index == self.ops.len() {
            self.index = 0;
            self.iterations += 1;
        }
        op
    }
}

/// Placeholder left behind when a thread migrates away (see
/// [`Processor::park`](crate::Processor::park)). The parked context stays
/// blocked on memory forever, so the scheduler never fetches from it;
/// reaching `next` means a parked slot was illegally resumed.
#[derive(Debug, Clone, Copy)]
pub struct ParkedProgram;

impl ThreadProgram for ParkedProgram {
    fn clone_box(&self) -> Box<dyn ThreadProgram> {
        Box::new(*self)
    }

    fn next(&mut self, _last_read: Option<u64>) -> ThreadOp {
        panic!("parked context fetched after its thread migrated away");
    }
}

/// Replays one operation before resuming an inner program.
///
/// A migrating thread is parked mid-transaction: its outstanding memory
/// operation was abandoned at the source controller, so on its new node
/// it must first re-issue that operation, then continue exactly where the
/// inner program left off (the completion value feeds the inner program's
/// `last_read` just as the original completion would have).
#[derive(Debug, Clone)]
pub struct ReissueProgram {
    pending: Option<ThreadOp>,
    inner: Box<dyn ThreadProgram>,
}

impl ReissueProgram {
    /// Wraps `inner`, emitting `pending` once before delegating.
    pub fn new(pending: ThreadOp, inner: Box<dyn ThreadProgram>) -> Self {
        Self {
            pending: Some(pending),
            inner,
        }
    }
}

impl ThreadProgram for ReissueProgram {
    fn clone_box(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn next(&mut self, last_read: Option<u64>) -> ThreadOp {
        match self.pending.take() {
            Some(op) => op,
            None => self.inner.next(last_read),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must contain operations")]
    fn empty_program_panics() {
        LoopProgram::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must consume cycles")]
    fn zero_cycle_program_panics() {
        LoopProgram::new(vec![ThreadOp::Compute(0)]);
    }

    #[test]
    fn loops_and_counts_iterations() {
        let mut p = LoopProgram::new(vec![ThreadOp::Compute(3), ThreadOp::Read(Addr(0))]);
        assert_eq!(p.next(None), ThreadOp::Compute(3));
        assert_eq!(p.iterations(), 0);
        assert_eq!(p.next(None), ThreadOp::Read(Addr(0)));
        assert_eq!(p.iterations(), 1);
        assert_eq!(p.next(Some(9)), ThreadOp::Compute(3));
    }
}
