//! The block-multithreaded processor.
//!
//! A processor holds `p` hardware contexts, each running one thread. A
//! context runs until it issues a memory operation that must leave the
//! processor (the sim decides hit/miss — the processor just hands the
//! operation out and blocks the context); the processor then switches to
//! the next runnable context, paying a fixed context-switch penalty
//! (11 cycles on Sparcle, paper Section 3.1). Single-context processors
//! simply stall, as in the paper's Figure 1.
//!
//! The processor exposes exactly the behavior the paper's application
//! model abstracts: with small transaction latencies it operates
//! latency-masked (Eq. 4); with large ones it is latency-bound and issues
//! `p` transactions every `T_r + T_t` cycles (Eq. 5).

use crate::program::{ParkedProgram, ThreadOp, ThreadProgram};
use commloc_mem::MemOp;

/// Execution state of one hardware context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ContextState {
    /// Can fetch its next operation.
    Ready,
    /// Computing for `remaining` more cycles.
    Running { remaining: u32 },
    /// Blocked on an outstanding memory transaction.
    WaitingMem,
}

#[derive(Debug, Clone)]
struct Context {
    program: Box<dyn ThreadProgram>,
    state: ContextState,
    /// Value delivered by the most recent completed read, not yet consumed
    /// by the program.
    last_read: Option<u64>,
}

/// What the processor does with the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CpuState {
    /// Executing the active context.
    Running,
    /// Draining a context switch toward `target`.
    Switching { target: usize, remaining: u32 },
    /// All contexts blocked on memory.
    Idle,
}

/// A memory operation issued by a context, to be handed to the node's
/// memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRequest {
    /// The issuing hardware context.
    pub context: usize,
    /// The operation.
    pub op: MemOp,
}

/// Cycle-accounting counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Cycles spent executing thread computation.
    pub busy_cycles: u64,
    /// Cycles spent switching contexts.
    pub switch_cycles: u64,
    /// Cycles with every context blocked on memory.
    pub idle_cycles: u64,
    /// Memory operations issued to the controller.
    pub issued: u64,
    /// Total cycles stepped.
    pub cycles: u64,
}

impl ProcStats {
    /// Average inter-issue time `t_t` over the window (cycles per issued
    /// transaction). Zero if nothing was issued.
    pub fn avg_issue_interval(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.cycles as f64 / self.issued as f64
        }
    }

    /// Average computation run length between issues (the measured
    /// grain `T_r`).
    pub fn avg_run_length(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.issued as f64
        }
    }
}

/// A block-multithreaded processor.
///
/// # Examples
///
/// Driving a single-context processor against an instant memory:
///
/// ```
/// use commloc_mem::{Addr, MemOp};
/// use commloc_proc::{LoopProgram, Processor, ThreadOp};
///
/// let program = LoopProgram::new(vec![ThreadOp::Compute(5), ThreadOp::Read(Addr(0))]);
/// let mut cpu = Processor::new(vec![Box::new(program)], 11);
/// let mut issues = 0;
/// for _ in 0..60 {
///     if let Some(req) = cpu.step() {
///         issues += 1;
///         cpu.complete(req.context, 0); // zero-latency memory
///     }
/// }
/// // One issue every T_r + 1 cycles of useful work (plus issue cycles).
/// assert!(issues >= 9);
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    contexts: Vec<Context>,
    active: usize,
    cpu: CpuState,
    switch_cycles: u32,
    stats: ProcStats,
}

impl Processor {
    /// Creates a processor with one context per program and the given
    /// context-switch cost (ignored for single-context processors).
    ///
    /// # Panics
    ///
    /// Panics if no programs are supplied.
    pub fn new(programs: Vec<Box<dyn ThreadProgram>>, switch_cycles: u32) -> Self {
        assert!(
            !programs.is_empty(),
            "a processor needs at least one context"
        );
        Self {
            contexts: programs
                .into_iter()
                .map(|program| Context {
                    program,
                    state: ContextState::Ready,
                    last_read: None,
                })
                .collect(),
            active: 0,
            cpu: CpuState::Running,
            switch_cycles,
            stats: ProcStats::default(),
        }
    }

    /// Number of hardware contexts `p`.
    pub fn contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Cycle-accounting counters.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = ProcStats::default();
    }

    /// Whether every context is blocked on memory.
    pub fn is_stalled(&self) -> bool {
        self.contexts
            .iter()
            .all(|c| c.state == ContextState::WaitingMem)
    }

    /// Horizon contract for the machine-level active-node engine: the
    /// number of cycles until this processor can possibly do observable
    /// work on its own.
    ///
    /// * `None` — every context is blocked on memory; until a completion
    ///   arrives, each step is exactly `{cycles += 1, idle_cycles += 1,
    ///   cpu = Idle}` (see [`Processor::advance_idle`]).
    /// * `Some(r)` with `r > 0` — a context switch is draining for `r`
    ///   more cycles (those cycles accrue `switch_cycles`, so they must
    ///   be stepped, not skipped).
    /// * `Some(0)` — runnable work exists right now.
    pub fn next_wake(&self) -> Option<u64> {
        if self.is_stalled() {
            return None;
        }
        match self.cpu {
            CpuState::Switching { remaining, .. } => Some(u64::from(remaining)),
            CpuState::Running | CpuState::Idle => Some(0),
        }
    }

    /// Applies `cycles` fully-blocked steps in O(1). Valid only while
    /// [`Processor::is_stalled`]: from either blocked CPU state
    /// (`Running` on a context that just blocked, or `Idle`), one step is
    /// exactly `{cycles += 1, idle_cycles += 1, cpu = Idle}` and the two
    /// states behave identically on any later wake-up path, so the bulk
    /// advance is bit-identical to stepping cycle by cycle.
    ///
    /// # Panics
    ///
    /// Panics if any context is runnable.
    pub fn advance_idle(&mut self, cycles: u64) {
        assert!(
            self.is_stalled(),
            "advance_idle on a processor with runnable work"
        );
        self.cpu = CpuState::Idle;
        self.stats.cycles += cycles;
        self.stats.idle_cycles += cycles;
    }

    /// Removes the program of a memory-blocked context so its thread can
    /// migrate to another processor. The slot is left permanently parked:
    /// it stays `WaitingMem` forever (the caller abandons its outstanding
    /// transaction and must never complete it), so the scheduler skips it
    /// and the processor behaves as if it had one context fewer.
    ///
    /// # Panics
    ///
    /// Panics if the context is not blocked on memory — only a thread
    /// wedged behind an outstanding transaction may migrate.
    pub fn park(&mut self, context: usize) -> Box<dyn ThreadProgram> {
        let ctx = &mut self.contexts[context];
        assert_eq!(
            ctx.state,
            ContextState::WaitingMem,
            "park of context {context} that is not blocked on memory"
        );
        ctx.last_read = None;
        std::mem::replace(&mut ctx.program, Box::new(ParkedProgram))
    }

    /// Adds a context running `program` — a thread stolen from another
    /// node — in `Ready` state, returning its index. The new context
    /// joins the round-robin rotation and is scheduled (paying the usual
    /// switch cost if the processor was busy or idle on another slot)
    /// from the next cycle.
    pub fn adopt(&mut self, program: Box<dyn ThreadProgram>) -> usize {
        self.contexts.push(Context {
            program,
            state: ContextState::Ready,
            last_read: None,
        });
        self.contexts.len() - 1
    }

    /// Delivers a memory completion to a context, unblocking it.
    ///
    /// # Panics
    ///
    /// Panics if the context was not waiting on memory.
    pub fn complete(&mut self, context: usize, value: u64) {
        let ctx = &mut self.contexts[context];
        assert_eq!(
            ctx.state,
            ContextState::WaitingMem,
            "completion for context {context} that was not waiting"
        );
        ctx.state = ContextState::Ready;
        ctx.last_read = Some(value);
    }

    /// Advances one processor cycle; returns a memory operation if one was
    /// issued this cycle.
    pub fn step(&mut self) -> Option<IssueRequest> {
        self.stats.cycles += 1;
        match self.cpu {
            CpuState::Switching { target, remaining } => {
                self.stats.switch_cycles += 1;
                if remaining <= 1 {
                    self.active = target;
                    self.cpu = CpuState::Running;
                } else {
                    self.cpu = CpuState::Switching {
                        target,
                        remaining: remaining - 1,
                    };
                }
                None
            }
            CpuState::Idle => {
                // Wake as soon as any context is runnable. Resuming the
                // still-loaded active context is free; any other context
                // costs a switch.
                if self.contexts[self.active].state != ContextState::WaitingMem {
                    self.cpu = CpuState::Running;
                    return self.run_active();
                }
                if let Some(target) = self.next_runnable(self.active) {
                    self.begin_switch(target);
                    self.stats.switch_cycles += 1;
                } else {
                    self.stats.idle_cycles += 1;
                }
                None
            }
            CpuState::Running => self.run_active(),
        }
    }

    /// Executes one cycle of the active context.
    fn run_active(&mut self) -> Option<IssueRequest> {
        loop {
            let ctx = &mut self.contexts[self.active];
            match ctx.state {
                ContextState::WaitingMem => {
                    // The active context blocked (single-context stall, or
                    // nothing was runnable when it issued). Look again for
                    // runnable work.
                    if let Some(target) = self.next_runnable(self.active) {
                        if self.contexts.len() == 1 {
                            unreachable!("single context cannot be elsewhere-runnable");
                        }
                        self.begin_switch(target);
                        self.stats.switch_cycles += 1;
                    } else {
                        self.cpu = CpuState::Idle;
                        self.stats.idle_cycles += 1;
                    }
                    return None;
                }
                ContextState::Running { remaining } => {
                    self.stats.busy_cycles += 1;
                    if remaining <= 1 {
                        ctx.state = ContextState::Ready;
                    } else {
                        ctx.state = ContextState::Running {
                            remaining: remaining - 1,
                        };
                    }
                    return None;
                }
                ContextState::Ready => {
                    let input = ctx.last_read.take();
                    match ctx.program.next(input) {
                        ThreadOp::Compute(0) => continue, // zero-cost; fetch again
                        ThreadOp::Compute(cycles) => {
                            ctx.state = ContextState::Running { remaining: cycles };
                            continue; // execute the first cycle now
                        }
                        ThreadOp::Read(addr) => {
                            return Some(self.issue(MemOp::Read(addr)));
                        }
                        ThreadOp::Write(addr, value) => {
                            return Some(self.issue(MemOp::Write(addr, value)));
                        }
                    }
                }
            }
        }
    }

    /// Issues a memory operation from the active context and starts the
    /// context switch (multi-context processors only).
    fn issue(&mut self, op: MemOp) -> IssueRequest {
        let context = self.active;
        self.contexts[context].state = ContextState::WaitingMem;
        self.stats.issued += 1;
        if self.contexts.len() > 1 {
            if let Some(target) = self.next_runnable(context) {
                self.begin_switch(target);
            }
            // else: stay "Running" on the blocked context; the next step
            // notices and idles (or switches if something completed).
        }
        IssueRequest { context, op }
    }

    /// The next runnable context after `from` in round-robin order.
    fn next_runnable(&self, from: usize) -> Option<usize> {
        let p = self.contexts.len();
        (1..=p)
            .map(|i| (from + i) % p)
            .find(|&c| self.contexts[c].state != ContextState::WaitingMem && c != from)
    }

    fn begin_switch(&mut self, target: usize) {
        if self.switch_cycles == 0 {
            self.active = target;
            self.cpu = CpuState::Running;
        } else {
            self.cpu = CpuState::Switching {
                target,
                remaining: self.switch_cycles,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LoopProgram;
    use commloc_mem::Addr;

    /// Steps `cpu` for `cycles`, completing every issue after a fixed
    /// `latency`; returns issues observed.
    fn run_fixed_latency(cpu: &mut Processor, cycles: u64, latency: u64) -> u64 {
        let mut outstanding: Vec<(u64, usize)> = Vec::new();
        let mut issues = 0;
        for now in 0..cycles {
            outstanding.retain(|&(due, ctx)| {
                if due <= now {
                    cpu.complete(ctx, 0);
                    false
                } else {
                    true
                }
            });
            if let Some(req) = cpu.step() {
                issues += 1;
                outstanding.push((now + latency, req.context));
            }
        }
        issues
    }

    fn cpu(grain: u32, contexts: usize, switch: u32) -> Processor {
        let programs: Vec<Box<dyn ThreadProgram>> = (0..contexts)
            .map(|i| {
                Box::new(LoopProgram::new(vec![
                    ThreadOp::Compute(grain),
                    ThreadOp::Read(Addr(i as u64 * 2)),
                ])) as Box<dyn ThreadProgram>
            })
            .collect();
        Processor::new(programs, switch)
    }

    #[test]
    #[should_panic(expected = "at least one context")]
    fn empty_processor_panics() {
        Processor::new(vec![], 11);
    }

    #[test]
    fn single_context_follows_eq1() {
        // Eq. 1: t_t = T_r + T_t (plus the issue cycle itself).
        let grain = 20;
        for latency in [0u64, 10, 50, 200] {
            let mut p = cpu(grain, 1, 0);
            let cycles = 20_000;
            let issues = run_fixed_latency(&mut p, cycles, latency);
            let t_t = cycles as f64 / issues as f64;
            // Each loop: grain cycles compute + 1 issue cycle + latency
            // stall (completion polls once per cycle, adding <=1 slack).
            let expected = grain as f64 + 1.0 + latency as f64;
            assert!(
                (t_t - expected).abs() <= 2.0,
                "latency {latency}: t_t={t_t} expected~{expected}"
            );
        }
    }

    #[test]
    fn multithreading_masks_small_latency() {
        // Eq. 4: with latency below the masking threshold, t_t = T_r + T_s.
        let grain = 20;
        let switch = 11;
        let mut p = cpu(grain, 4, switch);
        let cycles = 30_000;
        let issues = run_fixed_latency(&mut p, cycles, 40);
        let t_t = cycles as f64 / issues as f64;
        let expected = grain as f64 + 1.0 + switch as f64;
        assert!(
            (t_t - expected).abs() <= 2.0,
            "t_t={t_t} expected~{expected}"
        );
    }

    #[test]
    fn multithreading_latency_bound_follows_eq5() {
        // Eq. 5: with large latency, t_t = (T_r + T_t)/p.
        let grain = 20;
        let latency = 400u64;
        for contexts in [2usize, 4] {
            let mut p = cpu(grain, contexts, 11);
            let cycles = 60_000;
            let issues = run_fixed_latency(&mut p, cycles, latency);
            let t_t = cycles as f64 / issues as f64;
            let expected = (grain as f64 + 1.0 + latency as f64) / contexts as f64;
            assert!(
                (t_t - expected).abs() / expected < 0.06,
                "p={contexts}: t_t={t_t} expected~{expected}"
            );
        }
    }

    #[test]
    fn slope_halves_with_two_contexts() {
        // Section 2.1: an extra x cycles of latency raises t_t by x/p.
        let grain = 10;
        let cycles = 60_000;
        let lat_lo = 300u64;
        let lat_hi = 600u64;
        let t = |contexts: usize, lat: u64| {
            let mut p = cpu(grain, contexts, 11);
            cycles as f64 / run_fixed_latency(&mut p, cycles, lat) as f64
        };
        let slope1 = (t(1, lat_hi) - t(1, lat_lo)) / (lat_hi - lat_lo) as f64;
        let slope2 = (t(2, lat_hi) - t(2, lat_lo)) / (lat_hi - lat_lo) as f64;
        assert!((slope1 - 1.0).abs() < 0.05, "slope1={slope1}");
        assert!((slope2 - 0.5).abs() < 0.05, "slope2={slope2}");
    }

    #[test]
    fn stats_account_all_cycles() {
        let mut p = cpu(20, 2, 11);
        run_fixed_latency(&mut p, 10_000, 100);
        let s = p.stats();
        // busy + switch + idle + issue cycles = total.
        let accounted = s.busy_cycles + s.switch_cycles + s.idle_cycles + s.issued;
        assert_eq!(accounted, s.cycles, "cycle accounting leak: {s:?}");
        assert!((s.avg_run_length() - 20.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "was not waiting")]
    fn completion_of_non_waiting_context_panics() {
        let mut p = cpu(5, 1, 0);
        p.complete(0, 0);
    }

    #[test]
    fn is_stalled_reflects_outstanding_issues() {
        let mut p = cpu(1, 1, 0);
        assert!(!p.is_stalled());
        let req = loop {
            if let Some(r) = p.step() {
                break r;
            }
        };
        assert!(p.is_stalled());
        p.complete(req.context, 7);
        assert!(!p.is_stalled());
    }

    #[test]
    fn next_wake_reports_the_horizon() {
        // Runnable work: wake now.
        let mut p = cpu(3, 2, 11);
        assert_eq!(p.next_wake(), Some(0));
        // First issue starts a switch toward the second context.
        let req = loop {
            if let Some(r) = p.step() {
                break r;
            }
        };
        assert_eq!(p.next_wake(), Some(11), "switch must drain 11 cycles");
        p.step();
        assert_eq!(p.next_wake(), Some(10));
        // Block the other context too: fully stalled.
        let second = loop {
            if let Some(r) = p.step() {
                break r;
            }
        };
        assert!(p.is_stalled());
        assert_eq!(p.next_wake(), None);
        p.complete(req.context, 0);
        p.complete(second.context, 0);
        assert_eq!(p.next_wake(), Some(0));
    }

    #[test]
    fn advance_idle_matches_stepping_bit_for_bit() {
        // Two processors reach the same fully-blocked state; one steps
        // through the idle gap, the other bulk-advances. Stats and all
        // subsequent behavior must match exactly.
        let run = |bulk: bool| {
            let mut p = cpu(4, 2, 5);
            let mut issued = Vec::new();
            while issued.len() < 2 {
                if let Some(r) = p.step() {
                    issued.push(r);
                }
            }
            assert!(p.is_stalled());
            if bulk {
                p.advance_idle(100);
            } else {
                for _ in 0..100 {
                    assert!(p.step().is_none());
                }
            }
            for r in issued {
                p.complete(r.context, 0);
            }
            // Post-gap trajectory: run until the next issue.
            let mut tail = 0u64;
            while p.step().is_none() {
                tail += 1;
            }
            (*p.stats(), tail)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "runnable work")]
    fn advance_idle_on_runnable_processor_panics() {
        let mut p = cpu(5, 1, 0);
        p.advance_idle(10);
    }

    #[test]
    fn park_removes_a_blocked_thread_and_adopt_resumes_it() {
        // Block the only context, park it, hand its program to a second
        // processor: the source idles forever, the destination runs the
        // thread from where it stopped.
        let mut src = cpu(4, 1, 0);
        let req = loop {
            if let Some(r) = src.step() {
                break r;
            }
        };
        assert!(src.is_stalled());
        let program = src.park(req.context);
        assert!(src.is_stalled(), "parked slot must stay blocked");
        assert_eq!(src.next_wake(), None);
        for _ in 0..50 {
            assert!(src.step().is_none(), "parked processor must never fetch");
        }

        let mut dst = cpu(4, 1, 0);
        let ctx = dst.adopt(program);
        assert_eq!(ctx, 1);
        assert_eq!(dst.contexts(), 2);
        let mut issues = 0;
        let mut outstanding: Vec<(u64, usize)> = Vec::new();
        for now in 0..200u64 {
            outstanding.retain(|&(due, c)| {
                if due <= now {
                    dst.complete(c, 0);
                    false
                } else {
                    true
                }
            });
            if let Some(r) = dst.step() {
                issues += 1;
                outstanding.push((now + 10, r.context));
            }
        }
        assert!(issues > 2, "adopted thread must issue on the new node");
    }

    #[test]
    #[should_panic(expected = "not blocked on memory")]
    fn park_of_runnable_context_panics() {
        let mut p = cpu(5, 1, 0);
        p.park(0);
    }

    #[test]
    fn read_values_reach_the_program() {
        // A program that reads and then writes what it read plus one.
        #[derive(Debug, Clone)]
        struct Echo {
            issued_read: bool,
            pub seen: Vec<u64>,
        }
        impl ThreadProgram for Echo {
            fn clone_box(&self) -> Box<dyn ThreadProgram> {
                Box::new(self.clone())
            }

            fn next(&mut self, last_read: Option<u64>) -> ThreadOp {
                if let Some(v) = last_read {
                    self.seen.push(v);
                }
                if self.issued_read {
                    self.issued_read = false;
                    ThreadOp::Compute(3)
                } else {
                    self.issued_read = true;
                    ThreadOp::Read(Addr(0))
                }
            }
        }
        let mut p = Processor::new(
            vec![Box::new(Echo {
                issued_read: false,
                seen: vec![],
            })],
            0,
        );
        let mut value = 100;
        for _ in 0..50 {
            if let Some(req) = p.step() {
                p.complete(req.context, value);
                value += 1;
            }
        }
        // The Echo program verified it received consecutive values via
        // its `seen` log — inspect through Debug formatting.
        let debug = format!("{p:?}");
        assert!(debug.contains("100"), "first read value missing: {debug}");
    }
}
