//! Facade-level conformance tests: the pure-model paper figures against
//! the checked-in golden tables, and the failure paths of the harness —
//! a seeded intentional mutation must trip both a golden gate and the
//! differential fuzzer's shrinker.
//!
//! The simulator-backed figures (3–5) are exercised by the
//! `commloc conformance` CLI (and its CI job); here we gate only the
//! figures that run in milliseconds so plain `cargo test -q` stays fast.

use std::path::Path;

use commloc::net::fuzz::{run_scenario_mutated, run_seed, shrink, FuzzMutation, FuzzScenario};
use commloc::sim::conformance::figures::{load_golden, self_check, ConformanceRun};
use commloc::sim::conformance::GoldenTable;

fn golden_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/conformance/golden"))
}

/// The model-side figures (6–9) reproduce the checked-in golden tables
/// exactly (GOLDEN_MODEL tolerance) and pass the paper's self-checks.
#[test]
fn model_figures_match_checked_in_goldens() {
    let mut run = ConformanceRun::new(1);
    for fig in ["fig6", "fig7", "fig8", "fig9"] {
        let table = run.figure(fig).expect("figure computes");
        let checks = self_check(&table);
        assert!(checks.is_empty(), "{fig} self-check violations: {checks:?}");
        let golden = load_golden(golden_dir(), fig).expect("golden table checked in");
        let violations = table.compare_against(&golden);
        assert!(violations.is_empty(), "{fig} violations: {violations:?}");
    }
}

/// Acceptance criterion, golden half: perturbing one blessed value by
/// more than the tolerance demonstrably trips the gate.
#[test]
fn perturbed_golden_value_trips_the_gate() {
    let mut run = ConformanceRun::new(1);
    let table = run.figure("fig9").expect("figure computes");
    let mut golden = GoldenTable::from_json(&table.to_json()).expect("round trip");
    // A 1% skew against the 1e-6 model tolerance.
    golden.rows[0].values[0].1 *= 1.01;
    let violations = table.compare_against(&golden);
    assert_eq!(violations.len(), 1, "exactly the skewed point must trip");
    assert_eq!(violations[0].figure, "fig9");
}

/// Acceptance criterion, fuzzer half: a seeded intentional mutation of
/// the reference engine's injection stream trips the lockstep checker,
/// and the shrinker reduces it to a minimal scenario with a
/// ready-to-paste repro test.
#[test]
fn seeded_mutation_trips_fuzzer_and_shrinker() {
    let scenario = FuzzScenario::from_seed(7);
    let mutation = Some(FuzzMutation::SkewDestination(0));
    let divergence =
        run_scenario_mutated(&scenario, mutation).expect_err("mutation must be caught");
    assert!(!divergence.what.is_empty());
    let outcome = shrink(&scenario, mutation).expect("failing scenario must shrink");
    assert!(outcome.scenario.cycles <= scenario.cycles);
    let repro = outcome.repro_test();
    assert!(repro.contains("#[test]"), "repro must be a pasteable test");
    assert!(repro.contains("fuzz_repro_seed_7"));
}

/// The differential fuzzer is reachable through the facade under plain
/// `cargo test -q` — the `reference-engine` feature plumbing holds — and
/// a few seeds run clean.
#[test]
fn fuzzer_runs_clean_through_the_facade() {
    for seed in [0u64, 1, 2] {
        let report = run_seed(seed).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        assert!(report.cycles > 0);
        assert_eq!(
            report.injected,
            report.delivered + report.dropped + report.wedged,
            "seed {seed}: conservation"
        );
    }
}
