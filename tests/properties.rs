//! Property-style tests over the analytical models, the network
//! substrate, and the fault-injection layer, via the facade crate.
//!
//! The workspace builds without registry access, so instead of an
//! external property-testing harness these tests draw their random cases
//! from the in-tree deterministic generator ([`DetRng`]): every case a
//! failure message names is reproducible from the seed in the loop.

use commloc::model::{
    CombinedModel, EndpointContention, MachineConfig, NetworkModel, NodeModel, TorusGeometry,
};
use commloc::net::{DetRng, Fabric, FabricConfig, FaultConfig, FaultPlan, Message, NodeId, Torus};
use commloc::sim::{run_experiment, Mapping, SimConfig, SimError};

fn arbitrary_machine(rng: &mut DetRng) -> MachineConfig {
    let c = rng.range_f64(1.2, 4.0);
    MachineConfig::alewife()
        .with_grain(rng.range_f64(1.0, 500.0))
        .with_contexts(rng.range_u64(1, 9) as u32)
        .with_context_switch(rng.range_f64(0.0, 40.0))
        .with_critical_path_messages(c)
        .with_messages_per_transaction(c * 1.6)
        .with_fixed_overhead(rng.range_f64(0.0, 200.0))
        .with_message_size(rng.range_f64(4.0, 40.0))
        .with_dimension(rng.range_u64(2, 4) as u32)
        .with_radix(rng.range_f64(2.0, 64.0))
        .with_clock_ratio(rng.range_f64(0.25, 4.0))
}

/// The combined model always finds a feasible operating point with
/// sub-saturation utilization, for any sane machine and distance.
#[test]
fn solver_always_finds_feasible_point() {
    let mut rng = DetRng::new(0x5eed_0001);
    for case in 0..64 {
        let machine = arbitrary_machine(&mut rng);
        let distance = rng.range_f64(0.0, 200.0);
        let model = machine.to_combined_model().unwrap();
        let op = model.solve(distance).unwrap();
        assert!(
            op.message_rate > 0.0,
            "case {case}: rate {}",
            op.message_rate
        );
        assert!(op.channel_utilization >= 0.0, "case {case}");
        assert!(op.channel_utilization < 1.0, "case {case}: saturated");
        assert!(op.message_latency >= 0.0, "case {case}");
        assert!(op.issue_interval > 0.0, "case {case}");
    }
}

/// Monotonicity: longer communication distances never increase the
/// transaction rate and never decrease the message latency.
#[test]
fn distance_monotonicity() {
    let mut rng = DetRng::new(0x5eed_0002);
    for case in 0..64 {
        let machine = arbitrary_machine(&mut rng);
        let d_lo = rng.range_f64(0.0, 50.0);
        let delta = rng.range_f64(0.1, 50.0);
        let model = machine.to_combined_model().unwrap();
        let near = model.solve(d_lo).unwrap();
        let far = model.solve(d_lo + delta).unwrap();
        assert!(
            far.transaction_rate <= near.transaction_rate * (1.0 + 1e-9),
            "case {case}: rate grew with distance"
        );
        assert!(
            far.message_latency >= near.message_latency - 1e-9,
            "case {case}: latency fell with distance"
        );
    }
}

/// The solved operating point is a true fixed point: the network latency
/// at the solved rate equals the node's absorbed latency.
#[test]
fn solution_is_fixed_point() {
    let mut rng = DetRng::new(0x5eed_0003);
    for case in 0..64 {
        let machine = arbitrary_machine(&mut rng);
        let distance = rng.range_f64(0.5, 100.0);
        let model = machine.to_combined_model().unwrap();
        let op = model.solve(distance).unwrap();
        let network = model
            .network()
            .message_latency(op.message_rate, distance)
            .unwrap();
        // Either the latency balance holds, or the node is pinned at its
        // latency-masked floor (processor-bound).
        let node_interval = model.node().message_interval_for_latency(network);
        assert!(
            (node_interval - op.message_interval).abs() / op.message_interval < 1e-6,
            "case {case}: interval {} vs {}",
            node_interval,
            op.message_interval
        );
    }
}

/// Expected gain is at least one and bounded by the distance ratio (the
/// paper's "at most linear" law).
#[test]
fn gain_bounded_by_distance_ratio() {
    let mut rng = DetRng::new(0x5eed_0004);
    for case in 0..64 {
        let machine = arbitrary_machine(&mut rng);
        let nodes = rng.range_f64(4.0, 1e6);
        let cfg = machine.with_nodes(nodes);
        let point = commloc::model::expected_gain(&cfg).unwrap();
        assert!(point.gain >= 1.0 - 1e-9, "case {case}: gain {}", point.gain);
        let distance_ratio = point.random_distance / point.ideal_distance;
        // Linear-in-distance-reduction bound, with slack for the
        // contention reduction that shrinking distance also brings
        // (bounded by the limiting per-hop latency ratio).
        let t_h_limit = commloc::model::limiting_per_hop_latency(&cfg);
        assert!(
            point.gain <= distance_ratio * t_h_limit + 1e-6,
            "case {case}: gain {} vs distance ratio {} x T_h limit {}",
            point.gain,
            distance_ratio,
            t_h_limit
        );
    }
}

/// Node model: the latency-for-interval line and its inversion agree
/// everywhere in the latency-bound regime.
#[test]
fn node_model_round_trip() {
    let mut rng = DetRng::new(0x5eed_0005);
    let mut checked = 0;
    for case in 0..128 {
        let grain = rng.range_f64(1.0, 500.0);
        let contexts = rng.range_u64(1, 9) as u32;
        let t_f = rng.range_f64(0.0, 300.0);
        let latency = rng.range_f64(0.0, 5_000.0);
        let node = NodeModel::from_parameters(grain, contexts, 22.0, 2.0, 3.2, t_f).unwrap();
        if latency <= node.masking_latency_threshold() {
            continue; // latency fully masked: inversion is not defined
        }
        checked += 1;
        let interval = node.message_interval_for_latency(latency);
        let back = node.message_latency_for_interval(interval);
        assert!(
            (back - latency).abs() < 1e-6,
            "case {case}: {back} vs {latency}"
        );
    }
    assert!(checked > 32, "too few latency-bound cases: {checked}");
}

/// Network model: per-hop latency is monotone in utilization and always
/// at least the single-cycle base delay.
#[test]
fn per_hop_latency_monotone() {
    let mut rng = DetRng::new(0x5eed_0006);
    for case in 0..64 {
        let b = rng.range_f64(1.0, 64.0);
        let k_d = rng.range_f64(0.1, 100.0);
        let rho_lo = rng.range_f64(0.0, 0.98);
        let d_rho = rng.range_f64(0.0, 0.01);
        let net = NetworkModel::new(TorusGeometry::new(2, 8.0).unwrap(), b)
            .unwrap()
            .with_endpoint_contention(EndpointContention::Ignore);
        let lo = net.per_hop_latency(rho_lo, k_d).unwrap();
        let hi = net
            .per_hop_latency((rho_lo + d_rho).min(0.989), k_d)
            .unwrap();
        assert!(lo >= 1.0, "case {case}: {lo}");
        assert!(hi >= lo - 1e-12, "case {case}: {hi} < {lo}");
    }
}

/// Network substrate: every injected message is delivered intact, with a
/// hop count equal to the torus distance, under random traffic on random
/// torus shapes.
#[test]
fn fabric_delivers_everything() {
    let mut rng = DetRng::new(0x5eed_0007);
    for case in 0..12 {
        let dims = rng.range_u64(1, 4) as u32;
        let radix = rng.range_u64(2, 7) as usize;
        let torus = Torus::new(dims, radix);
        let n = torus.nodes();
        let mut fabric: Fabric<usize> = Fabric::new(torus.clone(), FabricConfig::default());
        let mut expected: Vec<usize> = vec![0; n];
        let mut sent = 0;
        for i in 0..rng.range_u64(1, 60) as usize {
            let (src, dst) = (NodeId(rng.index(n)), NodeId(rng.index(n)));
            let len = rng.range_u64(1, 30) as u32;
            fabric.inject(Message::new(src, dst, len, i));
            expected[dst.0] += 1;
            sent += 1;
        }
        assert!(
            fabric.run_until_idle(2_000_000).expect("fault-free fabric"),
            "case {case}: fabric did not drain"
        );
        let mut received = 0;
        for node in torus.node_ids() {
            while let Some(d) = fabric.poll_delivery(node) {
                assert_eq!(d.message.dst, node, "case {case}");
                assert_eq!(
                    d.hops as usize,
                    torus.distance(d.message.src, d.message.dst),
                    "case {case}: non-minimal route"
                );
                received += 1;
                expected[node.0] -= 1;
            }
            assert_eq!(expected[node.0], 0, "case {case}: missing deliveries");
        }
        assert_eq!(received, sent, "case {case}");
        assert_eq!(fabric.buffered_flits(), 0, "case {case}");
    }
}

/// Fault-layer conservation: under any seeded drop plan, every injected
/// message is either delivered or logged as dropped — none vanish, and
/// the fault log agrees with the fabric's counters.
#[test]
fn delivered_plus_dropped_equals_injected() {
    let mut rng = DetRng::new(0x5eed_0008);
    for case in 0..10 {
        let seed = rng.next_u64();
        let drop_rate = rng.range_f64(0.05, 0.6);
        let torus = Torus::new(2, 4);
        let n = torus.nodes();
        let plan = FaultPlan::new(seed).with_drop_rate(drop_rate);
        let mut fabric: Fabric<usize> =
            Fabric::with_fault_plan(torus.clone(), FabricConfig::default(), plan);
        let injected = 80u64;
        for i in 0..injected as usize {
            let (src, dst) = (NodeId(rng.index(n)), NodeId(rng.index(n)));
            fabric.inject(Message::new(src, dst, rng.range_u64(1, 12) as u32, i));
        }
        assert!(
            fabric
                .run_until_idle(2_000_000)
                .expect("no permanent faults"),
            "case {case}: fabric did not drain"
        );
        let stats = fabric.stats();
        assert_eq!(
            stats.delivered_messages + stats.dropped_messages,
            injected,
            "case {case} (seed {seed:#x}, drop {drop_rate:.2}): message not conserved"
        );
        let log = fabric.fault_log().expect("fault plan installed");
        assert_eq!(
            log.dropped_messages(),
            stats.dropped_messages,
            "case {case}: fault log disagrees with fabric stats"
        );
    }
}

/// Fault-layer liveness: with any seeded fault plan installed, a bounded
/// run of the full machine either completes cleanly or surfaces a
/// structured watchdog/fabric error — it never panics and never wedges
/// silently inside the cycle budget.
#[test]
fn any_seeded_fault_plan_completes_or_reports() {
    let mut rng = DetRng::new(0x5eed_0009);
    for case in 0..6 {
        let seed = rng.next_u64();
        // Mix fault classes across cases: background drop/corrupt noise
        // everywhere, plus a permanent link kill on odd cases.
        let mut plan = FaultPlan::new(seed).with_config(FaultConfig {
            drop_rate: rng.range_f64(0.0, 0.002),
            corrupt_rate: rng.range_f64(0.0, 0.002),
            ..FaultConfig::default()
        });
        if case % 2 == 1 {
            let node = rng.index(64);
            plan = plan.kill_link_at(2_000, node, rng.range_u64(0, 2) as u32, {
                use commloc::net::Direction;
                if rng.chance(0.5) {
                    Direction::Plus
                } else {
                    Direction::Minus
                }
            });
        }
        let config = SimConfig {
            watchdog_cycles: 4_000,
            fault_plan: Some(plan),
            ..SimConfig::default()
        };
        // Retries make small timeouts survivable; the killed-link cases
        // must instead trip the watchdog with a structured report.
        match run_experiment(&config, &Mapping::identity(64), 3_000, 9_000) {
            Ok(m) => assert!(
                m.transaction_rate > 0.0,
                "case {case} (seed {seed:#x}): completed without progress"
            ),
            Err(SimError::Stalled(report)) => {
                assert!(report.stalled_for >= 4_000, "case {case}: early trip");
                assert_eq!(report.router_occupancy.len(), 64, "case {case}");
            }
            Err(other) => panic!("case {case} (seed {seed:#x}): unexpected error {other}"),
        }
    }
}

/// Latency-breakdown invariants under random traffic: every delivery's
/// component decomposition telescopes exactly to its total latency, the
/// aggregate sums match the per-delivery sums, the latency histogram
/// conserves counts, and the trace ring never exceeds its bound.
#[test]
fn breakdown_telescopes_and_histograms_conserve() {
    let mut rng = DetRng::new(0x5eed_000b);
    for case in 0..10 {
        let dims = rng.range_u64(1, 4) as u32;
        let radix = rng.range_u64(2, 7) as usize;
        let trace_capacity = rng.range_u64(1, 64) as usize;
        let torus = Torus::new(dims, radix);
        let n = torus.nodes();
        let config = FabricConfig {
            trace_capacity,
            ..FabricConfig::default()
        };
        let mut fabric: Fabric<usize> = Fabric::new(torus.clone(), config);
        let mut sent = 0u64;
        for i in 0..rng.range_u64(10, 80) as usize {
            let (src, dst) = (NodeId(rng.index(n)), NodeId(rng.index(n)));
            fabric.inject(Message::new(src, dst, rng.range_u64(1, 24) as u32, i));
            sent += 1;
        }
        assert!(
            fabric.run_until_idle(2_000_000).expect("fault-free fabric"),
            "case {case}: fabric did not drain"
        );
        let mut latency_sum = 0u64;
        for node in torus.node_ids() {
            while let Some(d) = fabric.poll_delivery(node) {
                let b = d.breakdown();
                assert_eq!(
                    b.total(),
                    d.total_latency(),
                    "case {case}: breakdown does not telescope"
                );
                if d.hops == 0 {
                    // Loopbacks never touch the network: no injection
                    // channel, no hops, no contention.
                    assert_eq!(b.injection + b.free_hop + b.contended_hop, 0, "case {case}");
                } else {
                    assert_eq!(b.injection, 1, "case {case}");
                    assert_eq!(b.free_hop, u64::from(d.hops), "case {case}");
                }
                latency_sum += d.total_latency();
            }
        }
        let lb = fabric.breakdown();
        assert_eq!(lb.deliveries, sent, "case {case}");
        assert_eq!(
            lb.deliveries,
            fabric.stats().delivered_messages,
            "case {case}"
        );
        assert_eq!(
            lb.total(),
            latency_sum,
            "case {case}: aggregate sums disagree with per-delivery totals"
        );
        // Histogram count conservation: every delivery is in exactly one
        // bucket, and the recorded sum matches the component sums.
        assert_eq!(lb.latency.count(), sent, "case {case}");
        assert_eq!(lb.latency.sum(), latency_sum, "case {case}");
        assert_eq!(
            lb.latency.bucket_counts().iter().sum::<u64>(),
            lb.latency.count(),
            "case {case}: histogram lost a sample"
        );
        assert_eq!(lb.queue_depth.count(), sent, "case {case}");
        // Bounded trace ring: retained events never exceed the bound,
        // while the recorded count keeps growing past it.
        let trace = fabric.trace().expect("tracing enabled");
        assert!(
            trace.len() <= trace_capacity,
            "case {case}: ring exceeded its bound"
        );
        assert!(trace.recorded() >= trace.len() as u64, "case {case}");
        assert!(trace.recorded() > 0, "case {case}: nothing traced");
    }
}

/// Tracing is observation-only: the same traffic on the same torus
/// produces bit-identical `FabricStats` and latency breakdowns whether
/// the trace ring is on or off.
#[test]
fn tracing_never_perturbs_the_fabric() {
    let mut rng = DetRng::new(0x5eed_000c);
    for case in 0..6 {
        let dims = rng.range_u64(1, 4) as u32;
        let radix = rng.range_u64(2, 6) as usize;
        let torus = Torus::new(dims, radix);
        let n = torus.nodes();
        let traffic: Vec<(usize, usize, u32)> = (0..rng.range_u64(5, 50))
            .map(|_| (rng.index(n), rng.index(n), rng.range_u64(1, 16) as u32))
            .collect();
        let run = |trace_capacity: usize| {
            let config = FabricConfig {
                trace_capacity,
                ..FabricConfig::default()
            };
            let mut fabric: Fabric<usize> = Fabric::new(torus.clone(), config);
            for (i, &(src, dst, len)) in traffic.iter().enumerate() {
                fabric.inject(Message::new(NodeId(src), NodeId(dst), len, i));
            }
            assert!(fabric.run_until_idle(2_000_000).expect("fault-free"));
            (fabric.stats().clone(), fabric.breakdown().clone())
        };
        let (stats_off, breakdown_off) = run(0);
        let (stats_on, breakdown_on) = run(128);
        assert_eq!(stats_off, stats_on, "case {case}: tracing changed stats");
        assert_eq!(
            breakdown_off, breakdown_on,
            "case {case}: tracing changed the breakdown"
        );
    }
}

/// Combined model solved via quadratic and bisection agree on random
/// parameter draws within the quadratic's domain.
#[test]
fn quadratic_bisection_agreement_random_draws() {
    let mut rng = DetRng::new(0x5eed_000a);
    for _ in 0..200 {
        let grain = rng.range_f64(1.0, 300.0);
        let p = rng.range_u64(1, 5) as u32;
        let t_f = rng.range_f64(0.0, 200.0);
        let b = rng.range_f64(4.0, 30.0);
        let d = rng.range_f64(2.0, 60.0);
        let node = NodeModel::from_parameters(grain, p, 22.0, 2.0, 3.2, t_f).unwrap();
        let net = NetworkModel::new(TorusGeometry::new(2, 8.0).unwrap(), b)
            .unwrap()
            .with_endpoint_contention(EndpointContention::Ignore);
        let model = CombinedModel::new(node, net);
        let r_floor = 1.0 / model.node().min_message_interval();
        let bisect = model.solve(d).unwrap().message_rate;
        let quad = model.solve_quadratic(d).unwrap().min(r_floor);
        assert!(
            (bisect - quad).abs() / quad < 1e-5,
            "grain={grain} p={p} t_f={t_f} b={b} d={d}: {bisect} vs {quad}"
        );
    }
}
