//! Property-based tests over the analytical models and the network
//! substrate, via the facade crate.

use commloc::model::{
    CombinedModel, EndpointContention, MachineConfig, NetworkModel, NodeModel, TorusGeometry,
};
use commloc::net::{Fabric, FabricConfig, Message, NodeId, Torus};
use proptest::prelude::*;

fn arbitrary_machine() -> impl Strategy<Value = MachineConfig> {
    (
        1.0f64..500.0,   // grain
        1u32..=8,        // contexts
        0.0f64..40.0,    // context switch
        1.2f64..4.0,     // c
        0.0f64..200.0,   // T_f
        4.0f64..40.0,    // B
        2u32..=3,        // n
        2.0f64..64.0,    // k
        0.25f64..4.0,    // clock ratio
    )
        .prop_map(|(grain, p, switch, c, t_f, b, n, k, ratio)| {
            MachineConfig::alewife()
                .with_grain(grain)
                .with_contexts(p)
                .with_context_switch(switch)
                .with_critical_path_messages(c)
                .with_messages_per_transaction(c * 1.6)
                .with_fixed_overhead(t_f)
                .with_message_size(b)
                .with_dimension(n)
                .with_radix(k)
                .with_clock_ratio(ratio)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The combined model always finds a feasible operating point with
    /// sub-saturation utilization, for any sane machine and distance.
    #[test]
    fn solver_always_finds_feasible_point(
        machine in arbitrary_machine(),
        distance in 0.0f64..200.0,
    ) {
        let model = machine.to_combined_model().unwrap();
        let op = model.solve(distance).unwrap();
        prop_assert!(op.message_rate > 0.0);
        prop_assert!(op.channel_utilization >= 0.0);
        prop_assert!(op.channel_utilization < 1.0);
        prop_assert!(op.message_latency >= 0.0);
        prop_assert!(op.issue_interval > 0.0);
    }

    /// Monotonicity: longer communication distances never increase the
    /// transaction rate and never decrease the message latency.
    #[test]
    fn distance_monotonicity(
        machine in arbitrary_machine(),
        d_lo in 0.0f64..50.0,
        delta in 0.1f64..50.0,
    ) {
        let model = machine.to_combined_model().unwrap();
        let near = model.solve(d_lo).unwrap();
        let far = model.solve(d_lo + delta).unwrap();
        prop_assert!(far.transaction_rate <= near.transaction_rate * (1.0 + 1e-9));
        prop_assert!(far.message_latency >= near.message_latency - 1e-9);
    }

    /// The solved operating point is a true fixed point: the network
    /// latency at the solved rate equals the node's absorbed latency.
    #[test]
    fn solution_is_fixed_point(
        machine in arbitrary_machine(),
        distance in 0.5f64..100.0,
    ) {
        let model = machine.to_combined_model().unwrap();
        let op = model.solve(distance).unwrap();
        let network = model.network().message_latency(op.message_rate, distance).unwrap();
        // Either the latency balance holds, or the node is pinned at its
        // latency-masked floor (processor-bound).
        let node_interval = model.node().message_interval_for_latency(network);
        prop_assert!(
            (node_interval - op.message_interval).abs() / op.message_interval < 1e-6,
            "interval {} vs {}", node_interval, op.message_interval
        );
    }

    /// Expected gain is at least one and bounded by the distance ratio
    /// (the paper's "at most linear" law).
    #[test]
    fn gain_bounded_by_distance_ratio(
        machine in arbitrary_machine(),
        nodes in 4.0f64..1e6,
    ) {
        let cfg = machine.with_nodes(nodes);
        let point = commloc::model::expected_gain(&cfg).unwrap();
        prop_assert!(point.gain >= 1.0 - 1e-9);
        let distance_ratio = point.random_distance / point.ideal_distance;
        // Linear-in-distance-reduction bound, with slack for the
        // contention reduction that shrinking distance also brings
        // (bounded by the limiting per-hop latency ratio).
        let t_h_limit = commloc::model::limiting_per_hop_latency(&cfg);
        prop_assert!(
            point.gain <= distance_ratio * t_h_limit + 1e-6,
            "gain {} vs distance ratio {} x T_h limit {}",
            point.gain, distance_ratio, t_h_limit
        );
    }

    /// Node model: the latency-for-interval line and its inversion agree
    /// everywhere in the latency-bound regime.
    #[test]
    fn node_model_round_trip(
        grain in 1.0f64..500.0,
        contexts in 1u32..=8,
        t_f in 0.0f64..300.0,
        latency in 0.0f64..5_000.0,
    ) {
        let node = NodeModel::from_parameters(grain, contexts, 22.0, 2.0, 3.2, t_f).unwrap();
        let threshold = node.masking_latency_threshold();
        prop_assume!(latency > threshold);
        let interval = node.message_interval_for_latency(latency);
        let back = node.message_latency_for_interval(interval);
        prop_assert!((back - latency).abs() < 1e-6);
    }

    /// Network model: per-hop latency is monotone in utilization and
    /// always at least the single-cycle base delay.
    #[test]
    fn per_hop_latency_monotone(
        b in 1.0f64..64.0,
        k_d in 0.1f64..100.0,
        rho_lo in 0.0f64..0.98,
        d_rho in 0.0f64..0.01,
    ) {
        let net = NetworkModel::new(TorusGeometry::new(2, 8.0).unwrap(), b)
            .unwrap()
            .with_endpoint_contention(EndpointContention::Ignore);
        let lo = net.per_hop_latency(rho_lo, k_d).unwrap();
        let hi = net.per_hop_latency((rho_lo + d_rho).min(0.989), k_d).unwrap();
        prop_assert!(lo >= 1.0);
        prop_assert!(hi >= lo - 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Network substrate: every injected message is delivered intact,
    /// with a hop count equal to the torus distance, under random traffic
    /// on random torus shapes.
    #[test]
    fn fabric_delivers_everything(
        dims in 1u32..=3,
        radix in 2usize..=6,
        pairs in proptest::collection::vec((0usize..1000, 0usize..1000, 1u32..30), 1..60),
    ) {
        let torus = Torus::new(dims, radix);
        let n = torus.nodes();
        let mut fabric: Fabric<usize> = Fabric::new(torus.clone(), FabricConfig::default());
        let mut expected: Vec<usize> = vec![0; n];
        let mut sent = 0;
        for (i, (src, dst, len)) in pairs.iter().enumerate() {
            let (src, dst) = (NodeId(src % n), NodeId(dst % n));
            fabric.inject(Message::new(src, dst, *len, i));
            expected[dst.0] += 1;
            sent += 1;
        }
        prop_assert!(fabric.run_until_idle(2_000_000), "fabric did not drain");
        let mut received = 0;
        for node in torus.node_ids() {
            while let Some(d) = fabric.poll_delivery(node) {
                prop_assert_eq!(d.message.dst, node);
                prop_assert_eq!(
                    d.hops as usize,
                    torus.distance(d.message.src, d.message.dst)
                );
                received += 1;
                expected[node.0] -= 1;
            }
            prop_assert_eq!(expected[node.0], 0);
        }
        prop_assert_eq!(received, sent);
        prop_assert_eq!(fabric.buffered_flits(), 0);
    }
}

/// Combined model solved via quadratic and bisection agree on random
/// parameter draws within the quadratic's domain.
#[test]
fn quadratic_bisection_agreement_random_draws() {
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let strategy = (1.0f64..300.0, 1u32..=4, 0.0f64..200.0, 4.0f64..30.0, 2.0f64..60.0);
    for _ in 0..200 {
        let (grain, p, t_f, b, d) = strategy
            .new_tree(&mut runner)
            .expect("strategy")
            .current();
        let node = NodeModel::from_parameters(grain, p, 22.0, 2.0, 3.2, t_f).unwrap();
        let net = NetworkModel::new(TorusGeometry::new(2, 8.0).unwrap(), b)
            .unwrap()
            .with_endpoint_contention(EndpointContention::Ignore);
        let model = CombinedModel::new(node, net);
        let r_floor = 1.0 / model.node().min_message_interval();
        let bisect = model.solve(d).unwrap().message_rate;
        let quad = model.solve_quadratic(d).unwrap().min(r_floor);
        assert!(
            (bisect - quad).abs() / quad < 1e-5,
            "grain={grain} p={p} t_f={t_f} b={b} d={d}: {bisect} vs {quad}"
        );
    }
}
