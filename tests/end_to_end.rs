//! Cross-crate integration tests: the full simulated machine against the
//! analytical model, spanning every workspace crate through the facade.

use commloc::model::{expected_gain, limiting_per_hop_latency, EndpointContention, MachineConfig};
use commloc::net::Torus;
use commloc::sim::{fit_line, run_experiment, Mapping, SimConfig};

/// The centerpiece validation: message-curve slopes measured from the
/// cycle-level simulator scale with the hardware context count as the
/// node model predicts (Figure 3's conclusion).
#[test]
fn message_curve_slopes_scale_with_contexts() {
    let mappings = [
        Mapping::identity(64),
        Mapping::random_swaps(64, 20, 9),
        Mapping::random(64, 9),
        Mapping::maximize_distance(&Torus::new(2, 8), 9, 1500),
    ];
    let mut slopes = Vec::new();
    for contexts in [1usize, 2] {
        let points: Vec<(f64, f64)> = mappings
            .iter()
            .map(|m| {
                let cfg = SimConfig {
                    contexts,
                    ..SimConfig::default()
                };
                let meas = run_experiment(&cfg, m, 10_000, 30_000).expect("fault-free run");
                (meas.message_interval, meas.message_latency)
            })
            .collect();
        slopes.push(fit_line(&points).expect("distinct message intervals").slope);
    }
    let ratio = slopes[1] / slopes[0];
    assert!(
        (1.6..=2.4).contains(&ratio),
        "slope ratio p2/p1 = {ratio} (expected about 2, slightly less in practice)"
    );
}

/// Simulated per-processor performance ratio between ideal and random
/// mappings on the 64-node machine is modest (well under the distance
/// ratio), exactly as the model predicts for a machine this size.
#[test]
fn locality_gain_at_64_nodes_is_modest() {
    let cfg = SimConfig::default();
    let ideal =
        run_experiment(&cfg, &Mapping::identity(64), 10_000, 30_000).expect("fault-free run");
    let random =
        run_experiment(&cfg, &Mapping::random(64, 17), 10_000, 30_000).expect("fault-free run");
    let sim_gain = ideal.transaction_rate / random.transaction_rate;
    // Model prediction for the same machine.
    let machine = MachineConfig::alewife().with_nodes(64.0);
    let model_gain = expected_gain(&machine).expect("solvable").gain;
    assert!(sim_gain > 1.0, "locality must help: {sim_gain}");
    assert!(
        sim_gain < 2.0,
        "64 nodes is far from the communication-bound regime: {sim_gain}"
    );
    // Model and simulation agree on the magnitude of the gain.
    assert!(
        (sim_gain - model_gain).abs() / model_gain < 0.35,
        "sim gain {sim_gain} vs model gain {model_gain}"
    );
}

/// The measured g and B of the simulated coherence protocol match the
/// values the paper reports for its workload (Section 3.2), which the
/// analytical defaults encode.
#[test]
fn protocol_statistics_match_calibration() {
    let m = run_experiment(
        &SimConfig::default(),
        &Mapping::identity(64),
        10_000,
        30_000,
    )
    .expect("fault-free run");
    let machine = MachineConfig::alewife();
    assert!(
        (m.messages_per_transaction - machine.messages_per_transaction()).abs() < 0.4,
        "g: sim {} vs calibrated {}",
        m.messages_per_transaction,
        machine.messages_per_transaction()
    );
    assert!(
        (m.avg_message_size - machine.message_size()).abs() < 1.5,
        "B: sim {} vs calibrated {}",
        m.avg_message_size,
        machine.message_size()
    );
}

/// The simulator's per-hop latency stays below the Eq. 16 limit for its
/// latency sensitivity — the feedback bound applies to the real machine,
/// not just the model.
#[test]
fn simulated_per_hop_latency_respects_eq16_style_bound() {
    for contexts in [1usize, 2] {
        let cfg = SimConfig {
            contexts,
            ..SimConfig::default()
        };
        let m =
            run_experiment(&cfg, &Mapping::random(64, 23), 10_000, 30_000).expect("fault-free run");
        // Eq. 16 with the measured effective sensitivity: B*s/(2n), where
        // s is bounded by p*g/c = p*g/2.
        let s = contexts as f64 * m.messages_per_transaction / 2.0;
        let limit = m.avg_message_size * s / 4.0;
        assert!(
            m.per_hop_latency < limit.max(2.0) * 1.5,
            "p={contexts}: T_h = {} vs bound {limit}",
            m.per_hop_latency
        );
    }
}

/// Model-side sanity from the facade: the headline numbers of the
/// abstract (gain about 2 at 1,000 processors, tens at a million,
/// three-ish times more with an 8x slower network).
#[test]
fn headline_numbers_from_the_abstract() {
    let base = MachineConfig::alewife().with_endpoint_contention(EndpointContention::Ignore);
    let g1k = expected_gain(&base.with_nodes(1e3)).unwrap().gain;
    let g1m = expected_gain(&base.with_nodes(1e6)).unwrap().gain;
    assert!((1.5..=2.5).contains(&g1k), "gain(10^3) = {g1k}");
    assert!((30.0..=60.0).contains(&g1m), "gain(10^6) = {g1m}");
    let slow = base.scale_network_speed(0.125);
    let s1k = expected_gain(&slow.with_nodes(1e3)).unwrap().gain;
    let ratio = s1k / g1k;
    assert!(
        (2.2..=3.8).contains(&ratio),
        "8x slowdown gain ratio = {ratio} (paper: about 3)"
    );
}

/// The limiting per-hop latency matches the paper's 9.8-cycle figure for
/// the two-context application.
#[test]
fn limiting_latency_matches_paper() {
    let limit = limiting_per_hop_latency(&MachineConfig::alewife().with_contexts(2));
    assert!((limit - 9.8).abs() < 0.5, "limit = {limit}");
}
