//! Cross-crate integration tests: the full simulated machine against the
//! analytical model, spanning every workspace crate through the facade.
//!
//! Every tolerance used here is a named constant from
//! [`commloc::sim::conformance::tolerances`], shared with the golden-file
//! conformance gates — the one place in the tree where "how close must
//! model and simulator agree" is decided.

use commloc::model::{expected_gain, limiting_per_hop_latency, EndpointContention, MachineConfig};
use commloc::net::Torus;
use commloc::sim::conformance::tolerances::{
    EQ16_BOUND_FLOOR, EQ16_BOUND_MARGIN, GAIN_1K_RANGE, GAIN_1M_RANGE, LIMITING_LATENCY,
    LIMITING_LATENCY_TOL, MODEL_VS_SIM_GAIN, PROTOCOL_B_ABS, PROTOCOL_G_ABS,
    SLOPE_RATIO_P2_OVER_P1, SLOW_NETWORK_GAIN_RATIO_RANGE,
};
use commloc::sim::{fit_line, run_experiment, Mapping, SimConfig};

/// Asserts `value` lies in the inclusive `(lo, hi)` tolerance range.
fn assert_in_range(what: &str, value: f64, (lo, hi): (f64, f64)) {
    assert!(
        (lo..=hi).contains(&value),
        "{what} = {value} outside tolerance range [{lo}, {hi}]"
    );
}

/// Asserts `actual` is within relative tolerance `tol` of `expected`.
fn assert_rel_err(what: &str, actual: f64, expected: f64, tol: f64) {
    let err = (actual - expected).abs() / expected.abs().max(1e-12);
    assert!(
        err <= tol,
        "{what}: actual {actual} vs expected {expected} (rel err {err:.3} > {tol})"
    );
}

/// Asserts `actual` is within absolute tolerance `tol` of `expected`.
fn assert_abs_err(what: &str, actual: f64, expected: f64, tol: f64) {
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: actual {actual} vs expected {expected} (abs tol {tol})"
    );
}

/// The centerpiece validation: message-curve slopes measured from the
/// cycle-level simulator scale with the hardware context count as the
/// node model predicts (Figure 3's conclusion).
#[test]
fn message_curve_slopes_scale_with_contexts() {
    let mappings = [
        Mapping::identity(64),
        Mapping::random_swaps(64, 20, 9),
        Mapping::random(64, 9),
        Mapping::maximize_distance(&Torus::new(2, 8), 9, 1500),
    ];
    let mut slopes = Vec::new();
    for contexts in [1usize, 2] {
        let points: Vec<(f64, f64)> = mappings
            .iter()
            .map(|m| {
                let cfg = SimConfig {
                    contexts,
                    ..SimConfig::default()
                };
                let meas = run_experiment(&cfg, m, 10_000, 30_000).expect("fault-free run");
                (meas.message_interval, meas.message_latency)
            })
            .collect();
        slopes.push(fit_line(&points).expect("distinct message intervals").slope);
    }
    assert_in_range(
        "slope ratio p2/p1",
        slopes[1] / slopes[0],
        SLOPE_RATIO_P2_OVER_P1,
    );
}

/// Simulated per-processor performance ratio between ideal and random
/// mappings on the 64-node machine is modest (well under the distance
/// ratio), exactly as the model predicts for a machine this size.
#[test]
fn locality_gain_at_64_nodes_is_modest() {
    let cfg = SimConfig::default();
    let ideal =
        run_experiment(&cfg, &Mapping::identity(64), 10_000, 30_000).expect("fault-free run");
    let random =
        run_experiment(&cfg, &Mapping::random(64, 17), 10_000, 30_000).expect("fault-free run");
    let sim_gain = ideal.transaction_rate / random.transaction_rate;
    // Model prediction for the same machine.
    let machine = MachineConfig::alewife().with_nodes(64.0);
    let model_gain = expected_gain(&machine).expect("solvable").gain;
    assert!(sim_gain > 1.0, "locality must help: {sim_gain}");
    assert!(
        sim_gain < 2.0,
        "64 nodes is far from the communication-bound regime: {sim_gain}"
    );
    // Model and simulation agree on the magnitude of the gain.
    assert_rel_err("locality gain", sim_gain, model_gain, MODEL_VS_SIM_GAIN);
}

/// The measured g and B of the simulated coherence protocol match the
/// values the paper reports for its workload (Section 3.2), which the
/// analytical defaults encode.
#[test]
fn protocol_statistics_match_calibration() {
    let m = run_experiment(
        &SimConfig::default(),
        &Mapping::identity(64),
        10_000,
        30_000,
    )
    .expect("fault-free run");
    let machine = MachineConfig::alewife();
    assert_abs_err(
        "g (messages per transaction)",
        m.messages_per_transaction,
        machine.messages_per_transaction(),
        PROTOCOL_G_ABS,
    );
    assert_abs_err(
        "B (message size)",
        m.avg_message_size,
        machine.message_size(),
        PROTOCOL_B_ABS,
    );
}

/// The simulator's per-hop latency stays below the Eq. 16 limit for its
/// latency sensitivity — the feedback bound applies to the real machine,
/// not just the model.
#[test]
fn simulated_per_hop_latency_respects_eq16_style_bound() {
    for contexts in [1usize, 2] {
        let cfg = SimConfig {
            contexts,
            ..SimConfig::default()
        };
        let m =
            run_experiment(&cfg, &Mapping::random(64, 23), 10_000, 30_000).expect("fault-free run");
        // Eq. 16 with the measured effective sensitivity: B*s/(2n), where
        // s is bounded by p*g/c = p*g/2.
        let s = contexts as f64 * m.messages_per_transaction / 2.0;
        let limit = m.avg_message_size * s / 4.0;
        assert!(
            m.per_hop_latency < limit.max(EQ16_BOUND_FLOOR) * EQ16_BOUND_MARGIN,
            "p={contexts}: T_h = {} vs bound {limit}",
            m.per_hop_latency
        );
    }
}

/// Model-side sanity from the facade: the headline numbers of the
/// abstract (gain about 2 at 1,000 processors, tens at a million,
/// three-ish times more with an 8x slower network).
#[test]
fn headline_numbers_from_the_abstract() {
    let base = MachineConfig::alewife().with_endpoint_contention(EndpointContention::Ignore);
    let g1k = expected_gain(&base.with_nodes(1e3)).unwrap().gain;
    let g1m = expected_gain(&base.with_nodes(1e6)).unwrap().gain;
    assert_in_range("gain(10^3)", g1k, GAIN_1K_RANGE);
    assert_in_range("gain(10^6)", g1m, GAIN_1M_RANGE);
    let slow = base.scale_network_speed(0.125);
    let s1k = expected_gain(&slow.with_nodes(1e3)).unwrap().gain;
    assert_in_range(
        "8x network-slowdown gain ratio",
        s1k / g1k,
        SLOW_NETWORK_GAIN_RATIO_RANGE,
    );
}

/// The limiting per-hop latency matches the paper's 9.8-cycle figure for
/// the two-context application.
#[test]
fn limiting_latency_matches_paper() {
    let limit = limiting_per_hop_latency(&MachineConfig::alewife().with_contexts(2));
    assert_abs_err(
        "limiting per-hop latency",
        limit,
        LIMITING_LATENCY,
        LIMITING_LATENCY_TOL,
    );
}
