//! Generality checks: the entire stack — routing, coherence, processors,
//! workload, measurement — on torus shapes other than the paper's 8x8.

use commloc::net::Torus;
use commloc::sim::{run_experiment, Mapping, SimConfig};

/// A 4x4x4 (64-node, 3D) machine runs the torus-neighbour workload end
/// to end: six neighbours per thread, e-cube over three dimensions,
/// identity mapping giving single-hop communication.
#[test]
fn three_dimensional_machine_end_to_end() {
    let cfg = SimConfig {
        dims: 3,
        radix: 4,
        ..SimConfig::default()
    };
    let m = run_experiment(&cfg, &Mapping::identity(64), 8_000, 24_000).expect("runs");
    assert!((m.distance - 1.0).abs() < 0.05, "d = {}", m.distance);
    assert!(m.transaction_rate > 0.0);
    // Six neighbours: reads dominate the mix even more than in 2D, so g
    // shifts toward 2 messages/transaction x (6 reads + heavier write
    // invalidation): sanity-band only.
    assert!(
        m.messages_per_transaction > 2.0 && m.messages_per_transaction < 5.0,
        "g = {}",
        m.messages_per_transaction
    );
}

/// Random mapping distance on the 3D torus matches the geometric
/// expectation, and performance degrades relative to the identity.
#[test]
fn three_dimensional_random_mapping() {
    let torus = Torus::new(3, 4);
    let mapping = Mapping::random(64, 31);
    let expected = mapping.average_neighbor_distance(&torus);
    let cfg = SimConfig {
        dims: 3,
        radix: 4,
        ..SimConfig::default()
    };
    let random = run_experiment(&cfg, &mapping, 8_000, 24_000).expect("runs");
    assert!(
        (random.distance - expected).abs() / expected < 0.1,
        "measured {} expected {expected}",
        random.distance
    );
    let ideal = run_experiment(&cfg, &Mapping::identity(64), 8_000, 24_000).expect("runs");
    assert!(ideal.transaction_rate > random.transaction_rate);
}

/// A small non-square machine (2x16 ring-heavy torus) still routes,
/// stays coherent, and makes progress.
#[test]
fn skinny_one_dimensional_machine() {
    let cfg = SimConfig {
        dims: 1,
        radix: 16,
        ..SimConfig::default()
    };
    let m = run_experiment(&cfg, &Mapping::identity(16), 6_000, 18_000).expect("runs");
    // 1D torus neighbours are one hop away under identity.
    assert!((m.distance - 1.0).abs() < 0.05);
    assert!(m.transaction_rate > 0.0);
}

/// Mapping distances on a 3D torus: Eq. 17's analytic value matches the
/// empirical mean over random mappings.
#[test]
fn eq17_holds_in_three_dimensions() {
    let torus = Torus::new(3, 4);
    let mut sum = 0.0;
    let trials = 12;
    for seed in 0..trials {
        sum += Mapping::random(64, seed).average_neighbor_distance(&torus);
    }
    let mean = sum / trials as f64;
    // Eq. 17: n*k^(n+1)/(4*(k^n - 1)) = 3*4^4/(4*63) = 3.047...
    let eq17 = 3.0 * 4f64.powi(4) / (4.0 * 63.0);
    assert!(
        (mean - eq17).abs() / eq17 < 0.1,
        "mean {mean} vs Eq. 17 {eq17}"
    );
}
