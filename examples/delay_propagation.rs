//! Delay propagation: inject a one-off router stall at a single node and
//! watch the disturbance spread and die out — the fault-injection
//! counterpart of the paper's open-network contention model.
//!
//! This drives the resilience subsystem's idle-wave experiment
//! ([`run_idle_wave`]): two deterministic copies of the 64-node machine
//! run in lockstep, one suffering a transient router stall at the victim
//! node, and their per-node completion counts are differenced per time
//! bucket and grouped by torus distance from the victim — the printed
//! deficits *are* the disturbance. The wave analyzers then summarize it:
//! propagation speed, decay distance, ring-to-ring damping, and the
//! per-component absorption attribution from the latency breakdown. The
//! analytical model says the network operates well below saturation
//! (channel utilization `rho` small), so the backlog a stall of `W`
//! cycles accumulates drains at roughly `1 - rho` service slots per
//! cycle: the completion rate should recover within about
//! `W * rho / (1 - rho)` cycles of the stall clearing, and the spatial
//! footprint should collapse within a few hops of the victim.
//!
//! Run with: `cargo run --release --example delay_propagation`

use commloc::sim::{run_experiment, run_idle_wave, DisturbanceConfig, Mapping, SimConfig};

fn main() {
    // `COMMLOC_SMOKE` shrinks the horizon and windows so CI can exercise
    // the example in seconds; unset, the full run reproduces the study.
    let smoke = std::env::var_os("COMMLOC_SMOKE").is_some();
    let victim = 27;
    let inject_cycle = if smoke { 3_000 } else { 12_000 };
    let stall_window = 800;
    let (warmup, window, horizon) = if smoke {
        (2_000, 4_000, 10_000)
    } else {
        (10_000, 20_000, 40_000)
    };
    let mapping = Mapping::identity(64);

    // Fault-free calibration run: the operating point the analytical
    // comparison needs (channel utilization rho).
    let baseline = run_experiment(&SimConfig::default(), &mapping, warmup, window)
        .expect("fault-free calibration run");
    let rho = baseline.channel_utilization;

    println!("=== Delay propagation from a single stalled router ===\n");
    println!(
        "machine: 64-node torus, identity mapping, d = {:.2} hops",
        baseline.distance
    );
    println!(
        "victim node {victim}, stall of {stall_window} network cycles at cycle {inject_cycle}"
    );
    println!("operating point: channel utilization rho = {rho:.3}\n");

    let config = DisturbanceConfig {
        sim: SimConfig::default(),
        victim,
        inject_cycle,
        stall_window,
        horizon,
        bucket: 1_000,
    };
    let wave = run_idle_wave(&config, &mapping).expect("idle-wave experiment");
    let curve = &wave.curve;

    println!("spatial profile — peak per-node completion deficit by distance:");
    println!("{:>10} {:>8} {:>14}", "distance", "nodes", "peak deficit");
    for (d, (peak, &size)) in curve.ring_peaks().iter().zip(&curve.ring_sizes).enumerate() {
        let bar = "#".repeat((peak * 4.0).round() as usize);
        println!("{d:>10} {size:>8} {peak:>14.2}  {bar}");
    }

    println!("\ntemporal profile — global completion deficit per bucket:");
    let global = curve.global();
    let first = (inject_cycle / curve.bucket).saturating_sub(2) as usize;
    println!("{:>12} {:>10}", "cycle", "deficit");
    for (i, &d) in global.iter().enumerate().skip(first) {
        let start = i as u64 * curve.bucket;
        let marker = if start < inject_cycle {
            ""
        } else if start < inject_cycle + stall_window + curve.bucket {
            "  <- stall"
        } else {
            ""
        };
        println!("{start:>12} {d:>10}{marker}");
    }

    println!("\nwave analyzers:");
    match wave.propagation_speed() {
        Some(speed) => println!("  propagation speed: {speed:.0} cycles/hop (bucket-limited)"),
        None => println!("  propagation speed: not measurable (wave too localized)"),
    }
    println!(
        "  decay distance: {} hop(s) at the 0.5 completions/node threshold",
        wave.decay_distance(0.5)
    );
    println!("  ring-to-ring damping: {:.2}", wave.damping());
    println!("  where the delay was absorbed (latency-breakdown deltas, network cycles):");
    for (component, delta) in &wave.absorption {
        println!("    {component:<14} {delta:>+10}");
    }
    println!(
        "  total absorbed in the fabric: {} cycles across positive components",
        wave.absorbed_total()
    );

    let stall_end = inject_cycle + stall_window;
    let predicted_lag = stall_window as f64 * rho / (1.0 - rho);
    println!("\nanalytical expectation vs measurement:");
    println!("  predicted catch-up lag after the stall: W*rho/(1-rho) = {predicted_lag:.0} cycles");
    match curve.recovery_cycle() {
        Some(recovery) => {
            let lag = recovery.saturating_sub(stall_end);
            println!(
                "  measured rate recovery: cycle {recovery} ({lag} cycles after the stall \
                 cleared, bucket resolution {})",
                curve.bucket
            );
            println!(
                "  -> disturbance decays: the sub-saturation network drains the backlog \
                 within {} bucket(s), as the open-network model predicts.",
                lag.div_ceil(curve.bucket).max(1)
            );
        }
        None => println!("  completion rate did not recover within the horizon"),
    }
}
