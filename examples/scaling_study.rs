//! Scaling study: the analytical model from 10 to a million processors —
//! per-hop latency saturation (Figure 6) and the expected gain from
//! exploiting physical locality (Figure 7 / Table 1).
//!
//! Run with: `cargo run --release --example scaling_study`

use commloc::model::{
    expected_gain, limiting_per_hop_latency, log_spaced_sizes, per_hop_latency_curve,
    MachineConfig, ModelError,
};

fn main() -> Result<(), ModelError> {
    let machine = MachineConfig::alewife().with_contexts(2);
    let sizes = log_spaced_sizes(10.0, 1e6, 1);

    println!(
        "per-hop latency saturation (Eq. 16 limit = {:.1} cycles):\n",
        limiting_per_hop_latency(&machine)
    );
    println!("{:>10} {:>8} {:>8} {:>8}", "N", "d_rand", "T_h", "rho");
    for point in per_hop_latency_curve(&machine, &sizes)? {
        println!(
            "{:>10.0} {:>8.1} {:>8.2} {:>8.3}",
            point.nodes, point.distance, point.per_hop_latency, point.channel_utilization
        );
    }

    println!("\nexpected gain from ideal vs random thread placement:\n");
    println!("{:>10} {:>8} {:>8} {:>8}", "N", "p=1", "p=2", "p=4");
    for n in [10.0, 100.0, 1000.0, 1e4, 1e5, 1e6] {
        let mut row = format!("{n:>10.0}");
        for p in [1, 2, 4] {
            let g = expected_gain(&machine.with_contexts(p).with_nodes(n))?.gain;
            row.push_str(&format!(" {g:>8.2}"));
        }
        println!("{row}");
    }

    println!("\nslower networks value locality more (Table 1):\n");
    println!(
        "{:>12} {:>10} {:>10}",
        "net speed", "gain(10^3)", "gain(10^6)"
    );
    for (label, factor) in [
        ("2x faster", 1.0),
        ("same", 0.5),
        ("2x slower", 0.25),
        ("4x slower", 0.125),
    ] {
        let cfg = machine.with_contexts(1).scale_network_speed(factor);
        let g3 = expected_gain(&cfg.with_nodes(1e3))?.gain;
        let g6 = expected_gain(&cfg.with_nodes(1e6))?.gain;
        println!("{label:>12} {g3:>10.1} {g6:>10.1}");
    }
    Ok(())
}
