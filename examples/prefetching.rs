//! Prefetching study: the paper's Section 2.1 claim that *any* mechanism
//! for keeping `w` transactions outstanding — block multithreading, weak
//! ordering, prefetching — multiplies the application transaction curve's
//! slope by `w`.
//!
//! This example drives a non-blocking [`PipelinedProcessor`] against a
//! fixed-latency memory and measures the issue interval as latency grows:
//! the sensitivity (inverse slope) falls as `1/w`, exactly like hardware
//! contexts in the block-multithreaded processor.
//!
//! Run with: `cargo run --release --example prefetching`

use commloc::mem::Addr;
use commloc::proc::{LoopProgram, PipelinedProcessor, ThreadOp};
use commloc::sim::fit_line;

fn issue_interval(window: usize, grain: u32, latency: u64, cycles: u64) -> f64 {
    let program = LoopProgram::new(vec![ThreadOp::Compute(grain), ThreadOp::Read(Addr(0))]);
    let mut cpu = PipelinedProcessor::new(Box::new(program), window);
    let mut outstanding: Vec<(u64, usize)> = Vec::new();
    for now in 0..cycles {
        outstanding.retain(|&(due, slot)| {
            if due <= now {
                cpu.complete(slot, 0);
                false
            } else {
                true
            }
        });
        if let Some(req) = cpu.step() {
            outstanding.push((now + latency, req.context));
        }
    }
    cpu.avg_issue_interval()
}

fn main() {
    // `COMMLOC_SMOKE` shrinks the measurement loops so CI can exercise
    // the example in seconds; unset, the full run reproduces the study.
    let cycles: u64 = if std::env::var_os("COMMLOC_SMOKE").is_some() {
        20_000
    } else {
        200_000
    };
    let grain = 10;
    let latencies: Vec<u64> = (1..=8).map(|i| i * 100).collect();
    println!("issue interval t_t vs transaction latency T_t (grain = {grain}):\n");
    print!("{:>8}", "T_t");
    for w in [1usize, 2, 4, 8] {
        print!(" {:>9}", format!("w={w}"));
    }
    println!();
    for &latency in &latencies {
        print!("{latency:>8}");
        for w in [1usize, 2, 4, 8] {
            print!(" {:>9.1}", issue_interval(w, grain, latency, cycles));
        }
        println!();
    }
    println!("\nfitted transaction-curve slopes (T_t per unit t_t):");
    for w in [1usize, 2, 4, 8] {
        let points: Vec<(f64, f64)> = latencies
            .iter()
            .map(|&l| (issue_interval(w, grain, l, cycles), l as f64))
            .collect();
        let fit = fit_line(&points).expect("distinct issue intervals");
        println!(
            "  w = {w}: slope = {:>5.2}  (model: slope = w = {w})",
            fit.slope
        );
    }
}
