//! Mapping study: run the full cycle-level simulator with the paper's
//! thread-to-processor mapping suite and watch performance degrade with
//! communication distance (the substance of Figures 4 and 5).
//!
//! Run with: `cargo run --release --example mapping_study`

use commloc::sim::{mapping_suite, run_experiment, SimConfig};

fn main() {
    let config = SimConfig::default();
    let torus = commloc::net::Torus::new(config.dims, config.radix);
    let suite = mapping_suite(&torus, 1992);

    println!(
        "simulating {} mappings on a {}-node machine ({} context/processor)\n",
        suite.len(),
        torus.nodes(),
        config.contexts
    );
    println!(
        "{:<14} {:>6} {:>6} {:>9} {:>9} {:>8} {:>7}",
        "mapping", "d", "d_sim", "r_t", "T_m", "T_h", "rho"
    );
    for named in &suite {
        let m =
            run_experiment(config.clone(), &named.mapping, 20_000, 60_000).expect("fault-free run");
        println!(
            "{:<14} {:>6.2} {:>6.2} {:>9.5} {:>9.1} {:>8.2} {:>7.3}",
            named.name,
            named.distance,
            m.distance,
            m.transaction_rate,
            m.message_latency,
            m.per_hop_latency,
            m.channel_utilization
        );
    }
    println!(
        "\nIdeal-to-worst mapping slowdown tracks distance, but sub-linearly —\n\
         fixed overheads bound the benefit of locality (paper Section 4.2)."
    );
}
