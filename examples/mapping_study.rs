//! Mapping study: run the full cycle-level simulator with the paper's
//! thread-to-processor mapping suite and watch performance degrade with
//! communication distance (the substance of Figures 4 and 5).
//!
//! Run with: `cargo run --release --example mapping_study`

use commloc::sim::{default_jobs, mapping_suite, run_sweep, SimConfig};

fn main() {
    // `COMMLOC_SMOKE` shrinks the measurement windows so CI can exercise
    // the example in seconds; unset, the full windows reproduce the figure.
    let smoke = std::env::var_os("COMMLOC_SMOKE").is_some();
    let (warmup, window) = if smoke {
        (2_000, 6_000)
    } else {
        (20_000, 60_000)
    };
    let config = SimConfig::default();
    let torus = commloc::net::Torus::new(config.dims, config.radix);
    let suite = mapping_suite(&torus, 1992);
    let jobs = default_jobs();

    println!(
        "simulating {} mappings on a {}-node machine ({} context/processor, {jobs} jobs)\n",
        suite.len(),
        torus.nodes(),
        config.contexts
    );
    println!(
        "{:<14} {:>6} {:>6} {:>9} {:>9} {:>8} {:>7}",
        "mapping", "d", "d_sim", "r_t", "T_m", "T_h", "rho"
    );
    let points = run_sweep(&config, &suite, warmup, window, jobs).expect("fault-free runs");
    for point in &points {
        let m = &point.measured;
        println!(
            "{:<14} {:>6.2} {:>6.2} {:>9.5} {:>9.1} {:>8.2} {:>7.3}",
            point.name,
            point.distance,
            m.distance,
            m.transaction_rate,
            m.message_latency,
            m.per_hop_latency,
            m.channel_utilization
        );
    }
    println!(
        "\nIdeal-to-worst mapping slowdown tracks distance, but sub-linearly —\n\
         fixed overheads bound the benefit of locality (paper Section 4.2)."
    );
}
