//! Quickstart: solve the combined model for an Alewife-like machine and
//! see how communication distance shapes performance.
//!
//! Run with: `cargo run --release --example quickstart`

use commloc::model::{CombinedModel, IssueTimeBreakdown, MachineConfig, ModelError};

fn main() -> Result<(), ModelError> {
    // The paper's Section 3 machine: a 64-node, 8x8 torus with network
    // switches clocked twice as fast as the processors, running an
    // application with very small computation grain.
    let machine = MachineConfig::alewife().with_contexts(2);
    let model: CombinedModel = machine.to_combined_model()?;

    println!(
        "machine: {} nodes, {} contexts/processor",
        machine.nodes(),
        machine.contexts()
    );
    println!(
        "latency sensitivity s = p*g/c = {:.2}",
        machine.latency_sensitivity()
    );
    println!(
        "random-mapping communication distance (Eq. 17): {:.2} hops\n",
        machine.random_mapping_distance()?
    );

    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "d", "t_t", "T_t", "T_m", "T_h", "rho"
    );
    for distance in [0.5, 1.0, 2.0, 3.0, 4.06, 5.0, 6.0] {
        let op = model.solve(distance)?;
        println!(
            "{distance:>6.2} {:>8.1} {:>8.1} {:>8.1} {:>8.2} {:>8.3}",
            op.issue_interval,
            op.transaction_latency,
            op.message_latency,
            op.per_hop_latency,
            op.channel_utilization
        );
    }

    // Where does the time go? (Eq. 18 decomposition, Figure 8.)
    let op = model.solve(1.0)?;
    let parts = IssueTimeBreakdown::from_operating_point(&model, &op);
    println!("\nideal mapping (d = 1) issue-time breakdown, network cycles:");
    println!(
        "  variable message overhead: {:>7.1}",
        parts.variable_message
    );
    println!("  fixed message overhead:    {:>7.1}", parts.fixed_message);
    println!(
        "  fixed transaction overhead:{:>7.1}",
        parts.fixed_transaction
    );
    println!("  actual CPU cycles:         {:>7.1}", parts.cpu);
    Ok(())
}
