//! Multithreading study: measure application message curves from the
//! cycle-level simulator and compare their slopes against the analytical
//! latency sensitivity `s = p*g/c` (the substance of Figure 3).
//!
//! Run with: `cargo run --release --example multithreading`

use commloc::sim::{default_jobs, fit_line, mapping_suite, run_sweep, SimConfig};

fn main() {
    // `COMMLOC_SMOKE` shrinks the measurement windows so CI can exercise
    // the example in seconds; unset, the full windows reproduce the figure.
    let smoke = std::env::var_os("COMMLOC_SMOKE").is_some();
    let (warmup, window) = if smoke {
        (2_000, 6_000)
    } else {
        (15_000, 45_000)
    };
    let torus = commloc::net::Torus::new(2, 8);
    let suite = mapping_suite(&torus, 7);

    for contexts in [1usize, 2, 4] {
        let config = SimConfig {
            contexts,
            ..SimConfig::default()
        };
        let mut points = Vec::new();
        let mut g_sum = 0.0;
        println!("p = {contexts}:");
        println!("  {:<14} {:>8} {:>8}", "mapping", "t_m", "T_m");
        let sweep =
            run_sweep(&config, &suite, warmup, window, default_jobs()).expect("fault-free runs");
        for point in &sweep {
            let m = &point.measured;
            println!(
                "  {:<14} {:>8.1} {:>8.1}",
                point.name, m.message_interval, m.message_latency
            );
            points.push((m.message_interval, m.message_latency));
            g_sum += m.messages_per_transaction;
        }
        let fit = fit_line(&points).expect("distinct message intervals");
        let g = g_sum / suite.len() as f64;
        let s_model = contexts as f64 * g / 2.0; // c = 2
        println!(
            "  fitted slope s = {:.2} (model p*g/c = {:.2}), intercept = {:.1}, R^2 = {:.3}\n",
            fit.slope, s_model, fit.intercept, fit.r_squared
        );
    }
    println!(
        "Slopes grow with the context count: multithreaded processors are\n\
         proportionally less sensitive to message latency (paper Section 2.3)."
    );
}
